"""Tiered-memory placement study: what a bounded fast tier buys the store.

The RDCA observation (PAPERS.md): the external-memory server's cache
hierarchy can serve the hot last mile far faster than DRAM — its atomic
engine cycles at tens of Mops instead of the PCIe/DRAM-bound ~2.4 Mops.
The question for the switch data plane is *placement*: which blocks of a
counter array deserve the small fast window?

:func:`run_tiering_point` answers it end to end on the simulated
testbed.  One run drives a bursty open-loop Zipf workload (1 M-flow
population, counter index = Zipf rank) through a tiered
:class:`~repro.core.state_store.RemoteStateStore` whose fast window is a
small fraction of the working set, under one placement policy:

* ``dram``      — all-DRAM baseline (static policy, no pins: nothing
  ever promotes; the fast window sits reserved but empty);
* ``static``    — operator pins the Zipf head up front (knows the
  popularity ranking a priori);
* ``frequency`` — access counts with seeded hysteresis learn the hot
  set online (the headline policy);
* ``watermark`` — occupancy-driven: fill while cold, drain when hot.

The workload is deliberately **bursty** (back-to-back bursts separated
by quiet gaps): a block with in-flight RDMA ops refuses to move by
design, so online promotion needs instants where the hot blocks have
quiesced — exactly what real traffic's on/off structure provides.  The
in-burst offered rate exceeds the DRAM atomic engine's service rate, so
the all-DRAM baseline queues at the NIC while the tiered runs serve the
Zipf head from the fast profile.

Every point also proves the safety story: exact per-counter totals
(zero lost updates) and a fast-occupancy peak that never exceeded the
configured bound, read from the ``tiering.*`` metrics.
:func:`run_tiering_chaos_point` repeats the frequency run with an RNIC
blackout landing mid-promotion on one member of a K=2 replicated pool —
demote-not-drop plus the replica max rule keeps every update.

Every run is seeded: same seed ⇒ same Zipf draws, same burst schedule,
same promotions, same numbers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..analysis.reporting import format_table
from ..apps.programs import CountingProgram
from ..cluster.replicated_store import ReplicatedStateStore
from ..core.state_store import (
    ATOMIC_OPERAND_BYTES,
    RemoteStateStore,
    StateStoreConfig,
)
from ..faults import FaultPlan, RnicBlackout
from ..rdma.memory import TIER_FAST
from ..rdma.rnic import TierProfile
from ..sim.units import usec
from ..tiering import TieredMemoryPool
from ..workloads.zipf import ZipfGenerator
from .topology import build_testbed

#: Placement policies compared by the sweep, in presentation order.
#: ``dram`` is the all-DRAM baseline every speedup is quoted against.
TIERING_POLICIES = ("dram", "static", "frequency", "watermark")

#: Zipf skew for the headline runs (≈ real DC flow popularity).
DEFAULT_ALPHA = 1.0

#: Fast window as a fraction of the working set (the acceptance bar:
#: 5 % of the counter array's blocks).
FAST_FRACTION = 0.05

#: Service profile of the fast tier: the RDCA cache-resident numbers —
#: no PCIe/DRAM round trip on READs, and a Fetch-and-Add engine that
#: cycles at cache speed instead of the 2.4 Mops DRAM path.
FAST_PROFILE = TierProfile(read_latency_ns=60.0, atomic_rate_ops=40e6)


@dataclass
class TieringPoint:
    """One placement policy's end-to-end numbers for the fixed workload."""

    policy: str
    flows: int
    counters: int
    updates: int
    total_blocks: int
    fast_blocks: int
    fast_capacity_bytes: int
    fast_occupancy_peak: int
    mean_latency_ns: float  # post-warmup mean issue→ACK FAA latency
    p99_latency_ns: float  # whole-run p99 (log2-bucket estimate)
    fast_hit_fraction: float
    promotions: int
    demotions: int
    moves_skipped: int
    lost_updates: int
    duration_ms: float

    @property
    def occupancy_bounded(self) -> bool:
        """Did fast occupancy ever exceed the configured budget?"""
        return self.fast_occupancy_peak <= self.fast_capacity_bytes


@dataclass
class TieringChaosPoint:
    """The chaos variant: blackout mid-promotion on a K=2 replica set."""

    flows: int
    counters: int
    updates: int
    blackout_at_ns: float
    blackout_ns: float
    members_alive: int
    lost_updates: int
    updates_unreplicated: int
    promotions: int
    abandoned_blocks: int

    @property
    def zero_lost(self) -> bool:
        return self.lost_updates == 0 and self.updates_unreplicated == 0


def zipf_burst_schedule(
    flows: int,
    counters: int,
    updates: int,
    alpha: float = DEFAULT_ALPHA,
    seed: int = 42,
    gap_ns: float = 400.0,
    burst_ops: int = 200,
    quiet_ns: float = 20_000.0,
    start_ns: float = 1_000.0,
) -> List[Tuple[float, int]]:
    """A seeded bursty Zipf update schedule: [(t_ns, counter index), ...].

    Counter index = Zipf rank mod *counters*, so popularity concentrates
    in the low blocks.  Ops arrive in back-to-back bursts of *burst_ops*
    spaced *gap_ns* apart, with *quiet_ns* of silence between bursts —
    the quiescent instants online promotion needs (busy blocks never
    move) and the on/off structure of real packet trains.
    """
    rng = random.Random(seed)
    zipf = ZipfGenerator(flows, alpha, rng)
    timed = []
    t = start_ns
    for n in range(updates):
        if n and n % burst_ops == 0:
            t += quiet_ns
        timed.append((t, zipf.sample() % counters))
        t += gap_ns
    return timed


def _drive(tb, store, timed) -> Dict[int, int]:
    """Schedule every update; return the exact per-counter totals owed."""
    expected: Dict[int, int] = {}
    for t_ns, index in timed:
        tb.sim.schedule(t_ns, store.update, index, 1)
        expected[index] = expected.get(index, 0) + 1
    return expected


def _build_counting_testbed(**testbed_kwargs):
    tb = build_testbed(n_hosts=2, **testbed_kwargs)
    program = CountingProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)
    return tb


def run_tiering_point(
    policy: str,
    flows: int = 1_000_000,
    counters: int = 1 << 12,
    updates: int = 20_000,
    alpha: float = DEFAULT_ALPHA,
    seed: int = 42,
    fast_fraction: float = FAST_FRACTION,
    units_per_block: int = 64,
    gap_ns: float = 400.0,
    burst_ops: int = 200,
    quiet_ns: float = 20_000.0,
    tick_ns: float = 15_000.0,
    warmup_fraction: float = 0.3,
) -> TieringPoint:
    """Mean/p99 FAA latency + safety checks for one placement policy.

    The latency mean is **post-warmup** (the first *warmup_fraction* of
    the schedule is the learning window for online policies); the
    zero-lost and occupancy-bound checks cover the whole run including
    warmup and the final flush.
    """
    if policy not in TIERING_POLICIES:
        raise ValueError(f"unknown tiering policy {policy!r}")
    tb = _build_counting_testbed()
    # The fast tier exists because the server's RNIC serves it faster:
    # install the per-tier service profile on the member's NIC.
    tb.memory_server.rnic.config.tier_profiles = {TIER_FAST: FAST_PROFILE}

    total_blocks = (counters + units_per_block - 1) // units_per_block
    fast_blocks = max(1, int(round(fast_fraction * total_blocks)))
    block_bytes = units_per_block * ATOMIC_OPERAND_BYTES
    pool = TieredMemoryPool(
        tb.controller,
        # "dram" is the static policy with no pins: nothing ever promotes.
        policy="static" if policy == "dram" else policy,
        policy_seed=seed,
        fast_capacity_bytes=fast_blocks * block_bytes,
        tick_ns=tick_ns,
        seed=seed,
    )
    member = pool.add_server(tb.memory_server, tb.server_port)
    geometry = pool.tier_object(
        "counters",
        ATOMIC_OPERAND_BYTES,
        counters,
        units_per_block=units_per_block,
        member=member,
        fast_blocks=fast_blocks,
    )
    if policy == "static":
        # The operator knows the Zipf head a priori: pin it fast up front.
        for block in range(fast_blocks):
            geometry.pin(block, TIER_FAST)
    store = RemoteStateStore(
        tb.switch,
        config=StateStoreConfig(counters=counters, reliable=True),
        tiering=geometry,
    )
    tb.switch.program.use_state_store(store)

    timed = zipf_burst_schedule(
        flows,
        counters,
        updates,
        alpha=alpha,
        seed=seed,
        gap_ns=gap_ns,
        burst_ops=burst_ops,
        quiet_ns=quiet_ns,
    )
    expected = _drive(tb, store, timed)

    # Snapshot the latency histogram at the warmup boundary so the mean
    # reflects steady state, not the learning window.
    latency = store.metrics.histogram("op_latency_ns")
    mark: Dict[str, float] = {}
    boundary_ns = timed[int(warmup_fraction * len(timed))][0]
    tb.sim.schedule(
        boundary_ns,
        lambda: mark.update(count=latency.count, total=latency.total),
    )

    tb.sim.run()
    store.flush_all()
    tb.sim.run()

    lost = sum(
        abs(store.read_counter_via_control_plane(index) - value)
        for index, value in expected.items()
    )
    snap = tb.sim.obs.registry.snapshot()
    scope = pool.metrics.name
    fast_hits = snap.get(f"{scope}.tier[fast].hits", 0)
    dram_hits = snap.get(f"{scope}.tier[dram].hits", 0)
    served = fast_hits + dram_hits
    steady_count = latency.count - mark.get("count", 0)
    steady_total = latency.total - mark.get("total", 0)
    return TieringPoint(
        policy=policy,
        flows=flows,
        counters=counters,
        updates=updates,
        total_blocks=total_blocks,
        fast_blocks=fast_blocks,
        fast_capacity_bytes=pool.fast_capacity_bytes,
        fast_occupancy_peak=snap.get(f"{scope}.tier[fast].occupancy_peak", 0),
        mean_latency_ns=steady_total / steady_count if steady_count else 0.0,
        p99_latency_ns=latency.percentile(0.99),
        fast_hit_fraction=fast_hits / served if served else 0.0,
        promotions=snap.get(f"{scope}.tier[fast].promotions", 0),
        demotions=snap.get(f"{scope}.tier[dram].demotions", 0),
        moves_skipped=snap.get(f"{scope}.moves_skipped", 0),
        lost_updates=lost,
        duration_ms=tb.sim.now / 1e6,
    )


def run_tiering_sweep(
    policies: Sequence[str] = TIERING_POLICIES, **dims
) -> List[TieringPoint]:
    """All policies over the identical seeded workload (fresh testbeds)."""
    return [run_tiering_point(policy, **dims) for policy in policies]


def run_tiering_chaos_point(
    flows: int = 1_000_000,
    counters: int = 1 << 10,
    updates: int = 6_000,
    alpha: float = DEFAULT_ALPHA,
    seed: int = 42,
    units_per_block: int = 64,
    fast_blocks: int = 2,
    tick_ns: float = 10_000.0,
) -> TieringChaosPoint:
    """Blackout mid-promotion on a K=2 replica set: zero lost updates.

    Both members host a tiered replica of the counter array; an RNIC
    blackout lands on member 0 while the frequency policy is actively
    promoting the Zipf head.  Reliable retransmission rides out a short
    outage; if the monitor declares the member dead instead, the pool
    abandons its fast blocks (DRAM stays authoritative) and the K=2
    replica max rule still returns every update.
    """
    tb = _build_counting_testbed(n_memory_servers=2)
    for server in tb.memory_servers:
        server.rnic.config.tier_profiles = {TIER_FAST: FAST_PROFILE}
    block_bytes = units_per_block * ATOMIC_OPERAND_BYTES
    pool = TieredMemoryPool(
        tb.controller,
        policy="frequency",
        policy_seed=seed,
        # Budget for one fast window per replica.
        fast_capacity_bytes=2 * fast_blocks * block_bytes,
        tick_ns=tick_ns,
        seed=seed,
        fail_after=3,
    )
    for server, port in zip(tb.memory_servers, tb.server_ports):
        pool.add_server(server, port)

    config = StateStoreConfig(
        counters=counters, reliable=True, retry_timeout_ns=usec(30)
    )

    def tiered_store(member):
        geometry = pool.tier_object(
            f"counters:{member.name}",
            ATOMIC_OPERAND_BYTES,
            counters,
            units_per_block=units_per_block,
            member=member,
            fast_blocks=fast_blocks,
        )
        return RemoteStateStore(tb.switch, config=config, tiering=geometry)

    rep = ReplicatedStateStore(
        tb.switch,
        pool,
        config=config,
        replication=2,
        store_factory=tiered_store,
    )
    tb.switch.program.use_state_store(rep)

    timed = zipf_burst_schedule(
        flows, counters, updates, alpha=alpha, seed=seed
    )
    expected = _drive(tb, rep, timed)

    # Black out member 0's RNIC from a quarter of the way in, for a
    # third of the remaining schedule: promotions are underway (the
    # first ticks have fired) and updates keep arriving throughout.
    blackout_at = timed[len(timed) // 4][0]
    blackout_ns = (timed[-1][0] - blackout_at) / 3.0
    plan = FaultPlan(seed=seed)
    plan.at(
        blackout_at,
        plan.on_rnic(tb.memory_servers[0].rnic, name="fastbox"),
        RnicBlackout(),
        duration_ns=blackout_ns,
    )
    plan.install(tb.sim)

    tb.sim.run()
    rep.flush_all()
    tb.sim.run()
    if len(rep.stores) < 2:
        rep.reconcile()
    lost = sum(
        abs(rep.read_counter(index) - value)
        for index, value in expected.items()
    )
    snap = tb.sim.obs.registry.snapshot()
    scope = pool.metrics.name
    return TieringChaosPoint(
        flows=flows,
        counters=counters,
        updates=updates,
        blackout_at_ns=blackout_at,
        blackout_ns=blackout_ns,
        members_alive=len(rep.stores),
        lost_updates=lost,
        updates_unreplicated=rep.cluster_stats.updates_unreplicated,
        promotions=snap.get(f"{scope}.tier[fast].promotions", 0),
        abandoned_blocks=snap.get(f"{scope}.blocks_abandoned", 0),
    )


def format_tiering_sweep(points: Sequence[TieringPoint]) -> str:
    base = next(
        (p.mean_latency_ns for p in points if p.policy == "dram"), 0.0
    )
    return format_table(
        [
            "policy",
            "fast blocks",
            "fast hits",
            "promo",
            "demo",
            "mean FAA (us)",
            "p99 (us)",
            "speedup",
            "lost",
            "peak<=bound",
        ],
        [
            [
                p.policy,
                f"{p.fast_blocks}/{p.total_blocks}",
                f"{p.fast_hit_fraction:.3f}",
                p.promotions,
                p.demotions,
                f"{p.mean_latency_ns / 1e3:.2f}",
                f"{p.p99_latency_ns / 1e3:.2f}",
                (
                    f"{base / p.mean_latency_ns:.2f}x"
                    if p.mean_latency_ns > 0
                    else "-"
                ),
                p.lost_updates,
                "yes" if p.occupancy_bounded else "NO",
            ]
            for p in points
        ],
        title=(
            "Placement policies over bursty Zipf FAA traffic "
            f"(population {points[0].flows:,}, fast window "
            f"{points[0].fast_blocks}/{points[0].total_blocks} blocks)"
            if points
            else "Placement policies"
        ),
    )


def format_tiering_chaos(point: TieringChaosPoint) -> str:
    return format_table(
        [
            "updates",
            "blackout (us)",
            "members alive",
            "promotions",
            "abandoned",
            "lost",
            "unreplicated",
        ],
        [
            [
                point.updates,
                f"{point.blackout_ns / 1e3:.0f}",
                point.members_alive,
                point.promotions,
                point.abandoned_blocks,
                point.lost_updates,
                point.updates_unreplicated,
            ]
        ],
        title=(
            "Tiering chaos: RNIC blackout mid-promotion, K=2 replicas "
            f"(population {point.flows:,})"
        ),
    )
