"""EMOMA-scale lookup study: million-flow Zipf traffic over the cuckoo table.

Three questions, answered end to end on the simulated testbed:

* **Does the cuckoo layout really resolve every miss in one READ?**
  With ``layout="cuckoo"`` the data plane picks the single bucket pair
  to fetch from the choice filter (repro.cuckoo); a correct run issues
  exactly one RDMA READ per remote lookup — zero bounce-retries — which
  :class:`OneReadCheck` asserts straight from the RoCE counters.

* **How do the SRAM cache policies compare under a heavy-tailed
  population?**  :func:`run_policy_point` drives an open-loop Zipf
  trace (1 M+ flows) through each policy and cache size, reporting the
  cache hit rate and the 99th-percentile bounce latency — the
  policy-comparison curves behind ``BENCH_lookup.json``.

* **Does miss throughput scale with the memory pool?**
  :func:`run_lookup_scaleout` shards the cuckoo table over N servers
  (cache disabled, so every packet is a genuine miss) and offers an
  open-loop load at each pool's lossless ceiling, reporting sustained
  misses/s — the §5 methodology applied to the EMOMA layout.

Every run is seeded: same seed ⇒ same flow population, same arrival
jitter, same cuckoo layout, same numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..analysis.reporting import format_table
from ..apps.programs import RemoteLookupProgram
from ..cluster import MemoryPool, ShardedLookupTable
from ..core.lookup_table import (
    ACTION_SET_DSCP,
    LookupTableConfig,
    RemoteAction,
    RemoteLookupTable,
)
from ..switches.hashing import FiveTuple
from ..switches.traffic_manager import TrafficManagerConfig
from ..workloads.zipf import OpenLoopZipfTraffic
from .scaleout import OFFERED_PER_SERVER_MLPS, RING_SEED, RING_VNODES
from .topology import build_testbed

#: Policies compared by the study, in presentation order.
POLICIES = ("fifo", "lru", "lfu", "pin")

#: Default cache sizes for the hit-rate curve (flows).
CACHE_SIZES = (256, 1024, 4096)

#: Zipf skew for the headline runs (≈ real DC flow popularity).
DEFAULT_ALPHA = 1.0


@dataclass
class OneReadCheck:
    """Wire-trace accounting for the cuckoo one-READ invariant."""

    remote_lookups: int
    reads_issued: int

    @property
    def bounce_retries(self) -> int:
        """READs beyond the first per miss (must be zero for cuckoo)."""
        return self.reads_issued - self.remote_lookups

    @property
    def holds(self) -> bool:
        return self.remote_lookups > 0 and self.bounce_retries == 0


@dataclass
class PolicyPoint:
    """One (policy, cache size) point of the hit-rate curve."""

    policy: str
    cache_entries: int
    population: int
    distinct_flows: int
    packets: int
    local_hits: int
    remote_lookups: int
    hit_rate: float
    p99_bounce_ns: float
    pins: int
    one_read: OneReadCheck


@dataclass
class ScaleMissRow:
    """One pool size of the sustained-miss-throughput sweep."""

    servers: int
    population: int
    distinct_flows: int
    offered_mlps: float
    packets_sent: int
    misses_completed: int
    lookups_lost: int
    duration_ms: float
    p99_bounce_ns: float
    one_read: OneReadCheck

    @property
    def mmisses_per_sec(self) -> float:
        if self.duration_ms <= 0:
            return 0.0
        return self.misses_completed / (self.duration_ms * 1e3)


@dataclass
class LookupScaleStudy:
    """Everything ``BENCH_lookup.json`` records for one (seed, population)."""

    population: int
    alpha: float
    count: int
    seed: int
    policy_curve: List[PolicyPoint] = field(default_factory=list)
    scaleout: List[ScaleMissRow] = field(default_factory=list)


def _install_zipf_flows(table, tb, traffic) -> List[FiveTuple]:
    """Install a DSCP action for every flow the schedule will offer."""
    flows = []
    src_ip = tb.hosts[0].eth.ip.value
    dst_ip = tb.hosts[1].eth.ip.value
    for rank in traffic.distinct_ranks():
        key = traffic.flow_key(rank)
        flow = FiveTuple(
            src_ip=src_ip,
            dst_ip=dst_ip,
            protocol=17,
            src_port=key.src_port,
            dst_port=key.dst_port,
        )
        table.install(flow, RemoteAction(ACTION_SET_DSCP, rank % 64))
        flows.append(flow)
    return flows


def _reads_issued(tb, tables) -> int:
    """Sum READs issued on each table's RoCE generator.

    Resolved via each generator's own (uniquified) metric scope — a
    shared registry across runs renames colliding ``roce[...]`` scopes,
    so looking the counter up by channel name would read a stale run.
    """
    snapshot = tb.sim.obs.registry.snapshot()
    return sum(
        snapshot.get(f"{table.rocegen.metrics.name}.reads_issued", 0)
        for table in tables
    )


def run_policy_point(
    policy: str,
    cache_entries: int,
    population: int = 1_000_000,
    count: int = 20_000,
    alpha: float = DEFAULT_ALPHA,
    seed: int = 3,
    entries: int = 1 << 14,
    rate_pps: float = 2e6,
) -> PolicyPoint:
    """Hit rate + p99 bounce latency for one policy at one cache size."""
    tb = build_testbed(n_hosts=2)
    program = RemoteLookupProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)

    config = LookupTableConfig(
        entries=entries,
        cache_entries=cache_entries,
        layout="cuckoo",
        hash_seed=seed,
        policy=policy,
        policy_seed=seed,
    )
    channel = tb.controller.open_channel(
        tb.memory_server, tb.server_port, config.region_bytes
    )
    table = RemoteLookupTable(tb.switch, channel, config=config)
    program.use_lookup_table(table)
    tb.controller.install_hash_seeds(table, seed)

    traffic = OpenLoopZipfTraffic(
        tb.sim,
        tb.hosts[0],
        tb.hosts[1],
        flows=population,
        alpha=alpha,
        rate_pps=rate_pps,
        count=count,
        seed=seed,
    )
    flows = _install_zipf_flows(table, tb, traffic)
    traffic.start()
    tb.sim.run()

    stats = table.stats
    if stats.remote_lookups == 0:
        raise RuntimeError("lookup-scale: no remote lookups; setup broken")
    latency = table.metrics.histogram("remote_latency_ns")
    pins = tb.sim.obs.registry.snapshot().get(
        f"{table.metrics.name}.cache.pins", 0
    )
    return PolicyPoint(
        policy=policy,
        cache_entries=cache_entries,
        population=population,
        distinct_flows=len(flows),
        packets=traffic.packets_sent,
        local_hits=stats.local_hits,
        remote_lookups=stats.remote_lookups,
        hit_rate=stats.hit_rate,
        p99_bounce_ns=latency.percentile(0.99),
        pins=pins,
        one_read=OneReadCheck(
            remote_lookups=stats.remote_lookups,
            reads_issued=_reads_issued(tb, [table]),
        ),
    )


def run_policy_curve(
    policies: Sequence[str] = POLICIES,
    cache_sizes: Sequence[int] = CACHE_SIZES,
    population: int = 1_000_000,
    count: int = 20_000,
    alpha: float = DEFAULT_ALPHA,
    seed: int = 3,
    entries: int = 1 << 14,
) -> List[PolicyPoint]:
    """The full policy × cache-size grid (one fresh testbed per point)."""
    return [
        run_policy_point(
            policy,
            cache,
            population=population,
            count=count,
            alpha=alpha,
            seed=seed,
            entries=entries,
        )
        for policy in policies
        for cache in cache_sizes
    ]


def run_lookup_scaleout_point(
    servers: int,
    population: int = 1_000_000,
    count: int = 20_000,
    alpha: float = DEFAULT_ALPHA,
    seed: int = 3,
    entries: int = 1 << 14,
    offered_per_server_mlps: float = OFFERED_PER_SERVER_MLPS,
) -> ScaleMissRow:
    """Sustained miss throughput with the cuckoo table sharded N ways.

    Cache disabled: every packet is a remote miss, so completed misses
    over the run's duration is the sustained miss rate.  The offered
    rate scales with the pool (each configuration runs at its own
    lossless ceiling), matching :mod:`repro.experiments.scaleout`.
    """
    tb = build_testbed(
        n_hosts=2,
        n_memory_servers=servers,
        tm_config=TrafficManagerConfig(),
    )
    pool = MemoryPool(tb.controller, vnodes=RING_VNODES, seed=RING_SEED)
    for server, port in zip(tb.memory_servers, tb.server_ports):
        pool.add_server(server, port)

    program = RemoteLookupProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)

    config = LookupTableConfig(
        entries=entries,
        cache_entries=0,
        layout="cuckoo",
        hash_seed=seed,
    )
    table = ShardedLookupTable(tb.switch, pool, config=config)
    program.use_lookup_table(table)
    tb.controller.install_hash_seeds(table, seed)

    traffic = OpenLoopZipfTraffic(
        tb.sim,
        tb.hosts[0],
        tb.hosts[1],
        flows=population,
        alpha=alpha,
        rate_pps=offered_per_server_mlps * 1e6 * servers,
        count=count,
        seed=seed,
    )
    flows = _install_zipf_flows(table, tb, traffic)
    traffic.start()
    tb.sim.run()

    stats = table.stats
    if stats.remote_lookups == 0:
        raise RuntimeError("lookup-scale: no remote lookups; setup broken")
    completed = (
        stats.remote_hits + stats.fingerprint_mismatches + stats.remote_invalid
    )
    # Aggregate p99 across shards: merge the per-shard histograms by
    # taking the worst shard's estimate (log2 buckets make a true merge
    # equivalent for the tail we care about).
    p99 = max(
        shard.metrics.histogram("remote_latency_ns").percentile(0.99)
        for shard in table.shards.values()
    )
    return ScaleMissRow(
        servers=servers,
        population=population,
        distinct_flows=len(flows),
        offered_mlps=offered_per_server_mlps * servers,
        packets_sent=traffic.packets_sent,
        misses_completed=completed,
        lookups_lost=stats.lookups_lost,
        duration_ms=tb.sim.now / 1e6,
        p99_bounce_ns=p99,
        one_read=OneReadCheck(
            remote_lookups=stats.remote_lookups,
            reads_issued=_reads_issued(tb, table.shards.values()),
        ),
    )


def run_lookup_scale(
    server_counts: Sequence[int] = (1, 2, 4),
    policies: Sequence[str] = POLICIES,
    cache_sizes: Sequence[int] = CACHE_SIZES,
    population: int = 1_000_000,
    count: int = 20_000,
    alpha: float = DEFAULT_ALPHA,
    seed: int = 3,
    entries: int = 1 << 14,
) -> LookupScaleStudy:
    """The whole study: policy curves plus the miss-throughput sweep."""
    study = LookupScaleStudy(
        population=population, alpha=alpha, count=count, seed=seed
    )
    study.policy_curve = run_policy_curve(
        policies=policies,
        cache_sizes=cache_sizes,
        population=population,
        count=count,
        alpha=alpha,
        seed=seed,
        entries=entries,
    )
    study.scaleout = [
        run_lookup_scaleout_point(
            n,
            population=population,
            count=count,
            alpha=alpha,
            seed=seed,
            entries=entries,
        )
        for n in server_counts
    ]
    return study


def format_policy_curve(points: Sequence[PolicyPoint]) -> str:
    return format_table(
        [
            "policy",
            "cache",
            "flows seen",
            "packets",
            "hit rate",
            "p99 bounce (us)",
            "pins",
            "one-READ",
        ],
        [
            [
                p.policy,
                p.cache_entries,
                p.distinct_flows,
                p.packets,
                f"{p.hit_rate:.3f}",
                f"{p.p99_bounce_ns / 1e3:.2f}",
                p.pins,
                "yes" if p.one_read.holds else "NO",
            ]
            for p in points
        ],
        title=(
            "SRAM cache policies under Zipf traffic "
            f"(population {points[0].population:,}, cuckoo layout)"
            if points
            else "SRAM cache policies"
        ),
    )


def format_lookup_scaleout(rows: Sequence[ScaleMissRow]) -> str:
    base = rows[0].mmisses_per_sec if rows else 0.0
    return format_table(
        [
            "servers",
            "offered (M/s)",
            "misses done",
            "lost",
            "time (ms)",
            "misses/s (M)",
            "speedup",
            "p99 bounce (us)",
            "one-READ",
        ],
        [
            [
                r.servers,
                f"{r.offered_mlps:.2f}",
                r.misses_completed,
                r.lookups_lost,
                f"{r.duration_ms:.2f}",
                f"{r.mmisses_per_sec:.2f}",
                f"{r.mmisses_per_sec / base:.2f}x" if base > 0 else "-",
                f"{r.p99_bounce_ns / 1e3:.2f}",
                "yes" if r.one_read.holds else "NO",
            ]
            for r in rows
        ],
        title=(
            "Sustained remote-miss throughput vs pool size "
            "(cuckoo layout, cache off, open-loop Zipf)"
        ),
    )
