"""Link-protection sweep: goodput over a corrupting link, guard vs breaker.

The LinkGuardian paper's `effective_lossRate_linkSpeed` experiment asks
one question of a corrupting link: how much goodput survives at a given
loss rate, with and without link-local protection?  This harness ports
that question onto the repo's two streaming primitives and its two
resilience mechanisms, at a fixed 10⁻³ per-frame corruption rate:

* ``lossless``     — clean link, no protection: the baseline.
* ``guard-off``    — corruption, transport go-back-N only (DESIGN.md
  §10): every corrupted frame is an ICRC drop that costs a NAK replay
  or a watchdog timeout — and, for the lookup table's bounced packets,
  is simply *lost* (the bounce has no end-to-end retry).
* ``breaker-only`` — corruption plus a :class:`SelfHealingChannel`
  (§11).  The decision-surface datum: scattered corruption never trips
  a breaker (strikes are not consecutive), so it behaves like
  ``guard-off`` — the breaker is the wrong tool for this failure.
* ``guard-on``     — corruption plus a full-ordered
  :class:`~repro.linkguard.LinkGuard` (§14): the guard detects the
  corrupt frame *at the link*, NAKs immediately, and resends from its
  emergency buffer within a link RTT.  The transport never notices.

Two workloads, both on the switch↔memory-server link:

* ``lookup`` — the §4 bounce-mode lookup table with its SRAM cache
  disabled, so every packet crosses the bad link twice in each
  direction; goodput is packets delivered to the destination host.
* ``pktbuf`` — the remote packet-buffer ring: a burst is stored over a
  clean link, the link then starts corrupting, and the drain must
  deliver every stranded entry; goodput is drained packets per ms of
  drain time (self-clocked, so recovery stalls show up directly).

Everything runs under :func:`~repro.rdma.packets.integrity_protected`
(ICRC verified end to end) and one seed: rows reproduce byte-for-byte
from ``(seed, variant, workload)``, and the committed
``benchmarks/BENCH_linkguard.json`` is regenerated, not re-measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..analysis.reporting import format_table
from ..apps.programs import RemoteBufferProgram, RemoteLookupProgram
from ..core.lookup_table import (
    ACTION_SET_DSCP,
    LookupTableConfig,
    RemoteAction,
    RemoteLookupTable,
)
from ..core.packet_buffer import (
    ENTRY_SEQ_BYTES,
    PacketBufferConfig,
    RemotePacketBuffer,
)
from ..faults import Corrupt, FaultPlan
from ..linkguard import LinkGuard
from ..obs import Observability
from ..policies import BreakerPolicy
from ..rdma.packets import integrity_protected
from ..resilience import CircuitBreakerConfig, SelfHealingChannel
from ..sim.rng import SeedSequence
from ..sim.units import gbps, usec
from ..switches.hashing import FiveTuple
from ..workloads.perftest import PacketSink, RawEthernetBw
from .topology import build_testbed

#: Root seed: one number pins every variant's timeline.
LINKGUARD_SEED = 42

#: The swept per-frame corruption probability (both link directions).
CORRUPT_RATE = 1e-3

#: Protection variants, weakest first.
VARIANTS = ("lossless", "guard-off", "breaker-only", "guard-on")

#: The two streaming primitives the sweep measures.
WORKLOADS = ("lookup", "pktbuf")

_DST_PORT = 20_000


@dataclass
class LinkGuardRow:
    """One (variant, workload) point of the link-protection sweep."""

    variant: str
    workload: str
    seed: int
    corrupt_rate: float
    packets_sent: int
    delivered: int
    out_of_order: int
    #: Frames the fault injector corrupted on the wire.
    corrupted_frames: int
    #: Transport-level recovery the variant paid (go-back-N NAK replays
    #: plus watchdog timeouts) — zero when the guard masks below it.
    transport_naks: int
    transport_timeouts: int
    #: Losses the guard repaired before the transport could see them.
    masked_losses: int
    guard_resent: int
    shim_bytes: int
    breaker_opens: int
    #: The measurement window: total run for ``lookup``, the drain phase
    #: for ``pktbuf`` (its store phase is identical across variants).
    duration_ms: float

    @property
    def lost(self) -> int:
        return self.packets_sent - self.delivered

    @property
    def goodput_per_ms(self) -> float:
        if self.duration_ms <= 0:
            return 0.0
        return self.delivered / self.duration_ms


def _breaker_config() -> CircuitBreakerConfig:
    """Same pacing the chaos recovery scenario tunes for 50 µs watchdogs."""
    return CircuitBreakerConfig(
        fail_threshold=3,
        close_threshold=1,
        open_timeout_ns=usec(100),
        probe_timeout_ns=usec(60),
        probe_jitter_ns=usec(10),
        backoff=2.0,
    )


def _protect(variant: str, tb, channel, primitive, seeds: SeedSequence):
    """Install the variant's protection; returns ``(guard, healer)``."""
    guard = healer = None
    if variant == "guard-on":
        guard = LinkGuard(tb.server_link)
    elif variant == "breaker-only":
        healer = SelfHealingChannel(
            tb.controller,
            channel,
            primitive,
            policy=BreakerPolicy(
                config=_breaker_config(),
                rng=seeds.stream(f"breaker[{variant}]"),
            ),
        )
    return guard, healer


def _corrupt(variant: str, tb, at_ns: float, rate: float, seed: int):
    """Arm symmetric corruption on the server link (except ``lossless``)."""
    if variant == "lossless" or rate <= 0.0:
        return None
    plan = FaultPlan(seed=seed)
    wire = plan.on_link(tb.server_link, name="server-link")
    plan.at(at_ns, wire, Corrupt(rate))
    plan.install(tb.sim)
    return wire


def run_linkguard_point(
    variant: str,
    workload: str,
    packets: int = 1500,
    corrupt_rate: float = CORRUPT_RATE,
    seed: int = LINKGUARD_SEED,
) -> LinkGuardRow:
    """One protection variant driving one primitive over the bad link."""
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; expected {VARIANTS}")
    if workload == "lookup":
        return _run_lookup(variant, packets, corrupt_rate, seed)
    if workload == "pktbuf":
        return _run_pktbuf(variant, packets, corrupt_rate, seed)
    raise ValueError(f"unknown workload {workload!r}; expected {WORKLOADS}")


def _row(
    variant, workload, seed, corrupt_rate, sent, sink, wire, guard, healer,
    transport_naks, transport_timeouts, duration_ms,
) -> LinkGuardRow:
    # Read effect totals off the injector/guard objects, not a registry
    # snapshot: under a shared registry a later variant's scope is
    # renamed ("...#2") and a name-based snapshot reads the wrong run.
    counts = guard.counts if guard is not None else {}
    return LinkGuardRow(
        variant=variant,
        workload=workload,
        seed=seed,
        corrupt_rate=corrupt_rate,
        packets_sent=sent,
        delivered=sink.packets,
        out_of_order=sink.out_of_order,
        corrupted_frames=(
            wire.effects.get("corrupted", 0) if wire is not None else 0
        ),
        transport_naks=transport_naks,
        transport_timeouts=transport_timeouts,
        masked_losses=counts.get("masked_losses", 0),
        guard_resent=counts.get("resent", 0),
        shim_bytes=counts.get("shim_bytes", 0),
        breaker_opens=healer.breaker.opens if healer is not None else 0,
        duration_ms=duration_ms,
    )


def _run_lookup(
    variant: str, packets: int, corrupt_rate: float, seed: int
) -> LinkGuardRow:
    """Bounce-mode lookups with the cache off: four bad-link crossings
    per packet, and a deposited packet a transport retry cannot recover."""
    seeds = SeedSequence(seed)
    with integrity_protected():
        tb = build_testbed(n_hosts=2, with_memory_server=True)
        program = RemoteLookupProgram()
        for host, port in zip(tb.hosts, tb.host_ports):
            program.install(host.eth.mac, port)
        tb.switch.bind_program(program)
        config = LookupTableConfig(entries=1 << 10, cache_entries=0)
        channel = tb.controller.open_channel(
            tb.memory_server,
            tb.server_port,
            config.entries * config.entry_bytes,
        )
        table = RemoteLookupTable(tb.switch, channel, config=config)
        program.use_lookup_table(table)
        flow = FiveTuple(
            src_ip=tb.hosts[0].eth.ip.value,
            dst_ip=tb.hosts[1].eth.ip.value,
            protocol=17,
            src_port=10_000,
            dst_port=_DST_PORT,
        )
        table.install(flow, RemoteAction(ACTION_SET_DSCP, 9))

        guard, healer = _protect(variant, tb, channel, table, seeds)
        wire = _corrupt(variant, tb, 0.0, corrupt_rate, seed)
        sink = PacketSink(tb.hosts[1], dst_port=_DST_PORT)
        gen = RawEthernetBw(
            tb.sim,
            tb.hosts[0],
            tb.hosts[1],
            packet_size=512,
            rate_bps=gbps(5),
            count=packets,
            dst_port=_DST_PORT,
        )
        gen.start()
        tb.sim.run()
        stats = table.rocegen.stats
        return _row(
            variant, "lookup", seed, corrupt_rate, packets, sink, wire,
            guard, healer, stats.naks_received, stats.timeouts,
            tb.sim.now / 1e6,
        )


def _run_pktbuf(
    variant: str, packets: int, corrupt_rate: float, seed: int
) -> LinkGuardRow:
    """Store a burst cleanly, then drain it while the link corrupts.

    The drain is self-clocked (chained READs, bounded outstanding), so
    every recovery stall — a 50 µs read watchdog versus a µs-scale guard
    resend — lands directly in the drain time.
    """
    seeds = SeedSequence(seed)
    with integrity_protected():
        tb = build_testbed(n_hosts=2, with_memory_server=True)
        program = RemoteBufferProgram()
        for host, port in zip(tb.hosts, tb.host_ports):
            program.install(host.eth.mac, port)
        tb.switch.bind_program(program)
        frame_bytes = 128
        entry_bytes = frame_bytes + ENTRY_SEQ_BYTES
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port, (packets + 16) * entry_bytes
        )
        primitive = RemotePacketBuffer(
            tb.switch,
            channel,
            protected_port=tb.host_ports[1],
            config=PacketBufferConfig(
                entry_bytes=entry_bytes,
                high_watermark_bytes=0,  # store the whole burst
                low_watermark_bytes=1 << 30,
                manual_load=True,
                max_outstanding_reads=4,
                read_timeout_ns=usec(50),
            ),
        )
        program.use_packet_buffer(primitive)

        guard, healer = _protect(variant, tb, channel, primitive, seeds)
        sink = PacketSink(tb.hosts[1], dst_port=_DST_PORT)
        gen = RawEthernetBw(
            tb.sim,
            tb.hosts[0],
            tb.hosts[1],
            packet_size=frame_bytes,
            rate_bps=gbps(1),
            count=packets,
            dst_port=_DST_PORT,
        )
        gen.start()
        tb.sim.run()  # store phase: the burst lands in the remote ring
        stored = primitive.stats.stored_packets

        wire = _corrupt(variant, tb, tb.sim.now, corrupt_rate, seed)
        drain_start = tb.sim.now
        primitive.start_draining()
        tb.sim.run()
        # The drain's recovery cost lives in two places: NAK replays on
        # the READ requesters and the primitive's own go-back-N watchdog.
        gens = {id(g): g for g in (*primitive.rocegens, *primitive.read_rocegens)}
        naks = sum(g.stats.naks_received for g in gens.values())
        timeouts = (
            sum(g.stats.timeouts for g in gens.values())
            + primitive.stats.read_recoveries
        )
        return _row(
            variant, "pktbuf", seed, corrupt_rate, stored, sink, wire,
            guard, healer, naks, timeouts,
            (tb.sim.now - drain_start) / 1e6,
        )


def run_linkguard_sweep(
    packets: int = 1500,
    corrupt_rate: float = CORRUPT_RATE,
    seed: int = LINKGUARD_SEED,
    variants: Sequence[str] = VARIANTS,
    workloads: Sequence[str] = WORKLOADS,
) -> List[LinkGuardRow]:
    """The full grid: every workload under every protection variant."""
    rows = [
        run_linkguard_point(
            variant, workload,
            packets=packets, corrupt_rate=corrupt_rate, seed=seed,
        )
        for workload in workloads
        for variant in variants
    ]
    publish_linkguard_metrics(Observability.adopt().registry, rows)
    return rows


def format_linkguard(rows: Sequence[LinkGuardRow]) -> str:
    base: Dict[str, float] = {
        r.workload: r.goodput_per_ms for r in rows if r.variant == "lossless"
    }
    return format_table(
        [
            "workload",
            "variant",
            "sent",
            "delivered",
            "lost",
            "ooo",
            "corrupted",
            "naks",
            "timeouts",
            "masked",
            "time (ms)",
            "goodput (pkt/ms)",
            "vs lossless",
        ],
        [
            [
                r.workload,
                r.variant,
                r.packets_sent,
                r.delivered,
                r.lost,
                r.out_of_order,
                r.corrupted_frames,
                r.transport_naks,
                r.transport_timeouts,
                r.masked_losses,
                f"{r.duration_ms:.3f}",
                f"{r.goodput_per_ms:,.0f}",
                f"{r.goodput_per_ms / base[r.workload]:.1%}"
                if base.get(r.workload, 0) > 0
                else "-",
            ]
            for r in rows
        ],
        title=(
            "Link protection — goodput over a "
            f"{rows[0].corrupt_rate:g}-corrupting link "
            f"(seed={rows[0].seed if rows else '-'})"
        ),
    )


def linkguard_perf_record(
    rows: Sequence[LinkGuardRow], label: str = "linkguard"
):
    """The sweep in ``repro-perf-record/v1`` shape (committed as BENCH)."""
    from ..analysis.profiling import PerfRecord, make_report

    records: Dict[str, PerfRecord] = {}
    base: Dict[str, float] = {
        r.workload: r.goodput_per_ms for r in rows if r.variant == "lossless"
    }
    for row in rows:
        record = PerfRecord(
            label=f"{row.workload}[{row.variant}]",
            wall_s=row.duration_ms / 1e3,
            events=row.packets_sent,
        )
        record.extra.update(
            {
                "seed": row.seed,
                "variant": row.variant,
                "workload": row.workload,
                "corrupt_rate": row.corrupt_rate,
                "packets_sent": row.packets_sent,
                "delivered": row.delivered,
                "lost": row.lost,
                "out_of_order": row.out_of_order,
                "corrupted_frames": row.corrupted_frames,
                "transport_naks": row.transport_naks,
                "transport_timeouts": row.transport_timeouts,
                "masked_losses": row.masked_losses,
                "guard_resent": row.guard_resent,
                "shim_bytes": row.shim_bytes,
                "breaker_opens": row.breaker_opens,
                "goodput_per_ms": row.goodput_per_ms,
                "goodput_vs_lossless": (
                    row.goodput_per_ms / base[row.workload]
                    if base.get(row.workload, 0) > 0
                    else None
                ),
            }
        )
        records[record.label] = record
    return make_report(label, records)


def publish_linkguard_metrics(registry, rows: Sequence[LinkGuardRow]) -> None:
    """Surface the acceptance numbers under ``linkguard.sweep`` so a CI
    metrics artifact can assert on them without re-parsing stdout."""
    scope = registry.unique_scope("linkguard.sweep")
    for row in rows:
        child = scope.child(f"{row.workload}[{row.variant}]")
        child.counter("delivered").inc(row.delivered)
        child.counter("lost").inc(row.lost)
        child.counter("masked_losses").inc(row.masked_losses)
        child.gauge("goodput_per_ms").set(row.goodput_per_ms)


def assert_linkguard(rows: Sequence[LinkGuardRow]) -> None:
    """The acceptance bar for the link-protection sweep.

    * ``pktbuf``: zero lost updates and zero reordering in *every*
      variant (the ring's watchdog always recovers — at a price).
    * ``guard-on``: goodput within 5 % of lossless on both workloads,
      zero lost anywhere, and losses actually masked.
    * ``guard-off``: measurably worse — the pktbuf drain loses ≥ 5 % of
      its goodput to transport timeouts, and the lookup bounce loses
      packets outright.
    * ``breaker-only``: the breaker never opens — scattered corruption
      is invisible to it, which is exactly why the guard exists.
    """
    by = {(r.workload, r.variant): r for r in rows}

    def need(workload, variant):
        row = by.get((workload, variant))
        if row is None:
            raise AssertionError(f"missing row {workload}[{variant}]")
        return row

    for workload in WORKLOADS:
        lossless = need(workload, "lossless")
        if lossless.lost != 0:
            raise AssertionError(f"{workload}: lossless baseline lost packets")
        guard_on = need(workload, "guard-on")
        if guard_on.lost != 0 or guard_on.out_of_order != 0:
            raise AssertionError(
                f"{workload}[guard-on]: lost {guard_on.lost}, "
                f"ooo {guard_on.out_of_order}"
            )
        if guard_on.goodput_per_ms < 0.95 * lossless.goodput_per_ms:
            raise AssertionError(
                f"{workload}[guard-on]: goodput {guard_on.goodput_per_ms:.0f} "
                f"< 95% of lossless {lossless.goodput_per_ms:.0f}"
            )
        if guard_on.masked_losses == 0:
            raise AssertionError(
                f"{workload}[guard-on]: nothing masked — corruption never hit"
            )
        if guard_on.transport_naks != 0 or guard_on.transport_timeouts != 0:
            raise AssertionError(
                f"{workload}[guard-on]: transport saw the loss "
                f"(naks={guard_on.transport_naks}, "
                f"timeouts={guard_on.transport_timeouts})"
            )
    for variant in VARIANTS:
        pktbuf = need("pktbuf", variant)
        if pktbuf.lost != 0 or pktbuf.out_of_order != 0:
            raise AssertionError(
                f"pktbuf[{variant}]: lost {pktbuf.lost} updates, "
                f"ooo {pktbuf.out_of_order}"
            )
    off = need("pktbuf", "guard-off")
    lossless = need("pktbuf", "lossless")
    if off.goodput_per_ms >= 0.95 * lossless.goodput_per_ms:
        raise AssertionError(
            "pktbuf[guard-off]: transport-only recovery should be "
            f"measurably worse ({off.goodput_per_ms:.0f} vs lossless "
            f"{lossless.goodput_per_ms:.0f})"
        )
    if need("lookup", "guard-off").lost == 0:
        raise AssertionError(
            "lookup[guard-off]: expected bounced packets lost to corruption"
        )
    for workload in WORKLOADS:
        breaker = need(workload, "breaker-only")
        if breaker.breaker_opens != 0:
            raise AssertionError(
                f"{workload}[breaker-only]: breaker opened on scattered "
                "corruption — it should be blind to this failure mode"
            )
