"""§2.2/§6 application study: an in-network KV cache over remote memory.

NetCache-class systems answer hot keys from switch SRAM and push misses to
the storage server's CPU.  This experiment measures what the paper's
remote lookup capability changes: cold keys are answered with an RDMA READ
from server DRAM, so the storage server's CPU receives *zero* GETs.

Modes:

* ``server``      — no switch cache at all; every query hits the CPU.
* ``sram``        — hottest keys pre-installed in SRAM (NetCache-style);
  misses go to the CPU.
* ``sram+remote`` — SRAM cache plus the remote value store for misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..analysis.reporting import format_table
from ..analysis.stats import percentile
from ..apps.kv_cache import (
    ENTRY_BYTES,
    KV_UDP_PORT,
    KvCacheProgram,
    KvHeader,
    KvStorageServer,
    RemoteValueStore,
    VALUE_BYTES,
    normalize_key,
)
from ..baselines.cpu_slowpath import CpuSlowPath, CpuSlowPathConfig
from ..net.headers import UdpHeader
from ..net.packet import Packet
from ..sim.units import SEC, gbps, to_usec
from ..switches.tables import ActionEntry
from ..workloads.factory import udp_between
from ..workloads.flows import ZipfSampler
from .topology import build_testbed

MODES = ("server", "sram", "sram+remote")


@dataclass
class KvResult:
    mode: str
    keys: int
    sram_entries: int
    queries: int
    replies: int
    hits: int
    median_latency_us: float
    p99_latency_us: float
    server_cpu_queries: int
    server_drops: int
    switch_answered: int

    @property
    def reply_rate(self) -> float:
        return self.replies / self.queries if self.queries else 0.0

    @property
    def server_bypass_rate(self) -> float:
        if self.queries == 0:
            return 0.0
        return 1.0 - self.server_cpu_queries / self.queries


def _value_for(key_id: int) -> bytes:
    return f"value-{key_id}".encode().ljust(VALUE_BYTES, b"\x00")


def _key_for(key_id: int) -> bytes:
    return normalize_key(f"key-{key_id}".encode())


def run_kv_cache(
    mode: str,
    keys: int = 10_000,
    sram_entries: int = 64,
    queries: int = 4_000,
    alpha: float = 1.1,
    rate_bps: float = gbps(2),
    seed: int = 0,
) -> KvResult:
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; pick from {MODES}")
    tb = build_testbed(n_hosts=2, with_memory_server=mode == "sram+remote")
    client, storage_host = tb.hosts

    program = KvCacheProgram(
        sram_entries=sram_entries if mode != "server" else 1,
        cache_fill=mode == "sram+remote",
    )
    program.install(client.eth.mac, tb.host_ports[0])
    program.install(storage_host.eth.mac, tb.host_ports[1])
    tb.switch.bind_program(program)

    server = KvStorageServer(
        storage_host, CpuSlowPath(tb.sim, CpuSlowPathConfig())
    )
    for key_id in range(keys):
        server.put(_key_for(key_id), _value_for(key_id))

    if mode == "sram+remote":
        # Size the bucket array for a tiny collision rate (expected
        # colliding fraction ~= keys / buckets); DRAM is cheap — that is
        # the paper's whole premise.
        buckets = 1 << 16
        while buckets < 64 * keys and buckets < (1 << 22):
            buckets <<= 1
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port, buckets * ENTRY_BYTES
        )
        store = RemoteValueStore(channel, buckets=buckets)
        for key_id in range(keys):
            store.populate(_key_for(key_id), _value_for(key_id))
        program.use_remote_store(tb.switch, store)
        # Bucket collisions still fall back to the server (correctness).
        program.use_server_port(tb.host_ports[1])
    else:
        program.use_server_port(tb.host_ports[1])
        if mode == "sram":
            # NetCache-style: the controller pre-installs the hottest keys.
            for key_id in range(min(sram_entries, keys)):
                program.sram.insert(
                    _key_for(key_id),
                    ActionEntry("value", {"value": _value_for(key_id)}),
                )

    # -- query workload -------------------------------------------------------
    sampler = ZipfSampler(keys, alpha, tb.seeds.stream(f"kv-{seed}"))
    latencies: List[float] = []
    hits = [0]
    replies = [0]

    def on_reply(packet: Packet, interface) -> None:
        udp = packet.find(UdpHeader)
        if udp is None or udp.src_port != KV_UDP_PORT:
            return
        header = KvHeader.unpack(packet.payload)
        if header.op != KvHeader.OP_REPLY:
            return
        replies[0] += 1
        if header.hit:
            hits[0] += 1
        sent_at = packet.meta.get("sent_at")
        if sent_at is not None:
            latencies.append(tb.sim.now - sent_at)

    client.packet_handlers.append(on_reply)

    template = udp_between(client, storage_host, 256, dst_port=KV_UDP_PORT)
    interval_ns = template.wire_len * 8 * SEC / rate_bps
    state = {"sent": 0}

    def send_next() -> None:
        if state["sent"] >= queries:
            return
        key_id = sampler.sample()
        query = udp_between(
            client, storage_host, 128,
            src_port=40_000, dst_port=KV_UDP_PORT,
            payload=KvHeader(op=KvHeader.OP_GET, key=_key_for(key_id)).pack(),
        )
        query.meta["sent_at"] = tb.sim.now
        client.send(query)
        state["sent"] += 1
        tb.sim.schedule(interval_ns, send_next)

    tb.sim.schedule(0.0, send_next)
    tb.sim.run()

    switch_answered = program.stats.sram_hits + program.stats.remote_hits
    return KvResult(
        mode=mode,
        keys=keys,
        sram_entries=sram_entries,
        queries=state["sent"],
        replies=replies[0],
        hits=hits[0],
        median_latency_us=(
            to_usec(percentile(latencies, 50)) if latencies else float("nan")
        ),
        p99_latency_us=(
            to_usec(percentile(latencies, 99)) if latencies else float("nan")
        ),
        server_cpu_queries=server.cpu_queries,
        server_drops=server.dropped_queries,
        switch_answered=switch_answered,
    )


def run_kv_cache_comparison(**kwargs) -> List[KvResult]:
    return [run_kv_cache(mode, **kwargs) for mode in MODES]


def format_kv_cache(results: Sequence[KvResult]) -> str:
    return format_table(
        [
            "mode",
            "replies",
            "hit replies",
            "median (us)",
            "p99 (us)",
            "switch answered",
            "server CPU GETs",
            "server bypass",
        ],
        [
            [
                r.mode,
                f"{r.replies}/{r.queries}",
                r.hits,
                f"{r.median_latency_us:.2f}",
                f"{r.p99_latency_us:.2f}",
                r.switch_answered,
                r.server_cpu_queries,
                f"{r.server_bypass_rate * 100:.1f}%",
            ]
            for r in results
        ],
        title="§2.2/§6 — in-network KV cache: SRAM vs remote-memory miss path",
    )
