"""Chaos soak: the state store under a lossy switch-to-server link.

The paper's counter primitive (§4, Fig. 3b) assumes its RDMA channel is
lossless; §5 then admits "RDMA requests were occasionally dropped at the
NIC" without saying what that costs.  This experiment answers with the
fault subsystem: sweep i.i.d. loss on the memory-server link (both
directions — lost Fetch-and-Adds *and* lost ACKs) while a switch counts
a fixed packet schedule into the remote store, and measure

* **correctness** — with the reliable-mode store (same-PSN retransmit,
  NAK-driven go-back-N, watchdog), every per-counter total must match
  the send schedule exactly: zero lost updates at every loss rate;
* **goodput** — completed counter updates per second of simulated time,
  reported relative to the lossless run.  NAK-driven recovery keeps the
  penalty small (the LinkGuardian argument: react to the loss *event*,
  not the timeout) — the acceptance bar is ≥ 90 % of lossless goodput
  at 1 % loss.

Every fault draws from the :class:`~repro.faults.FaultPlan`'s seed, so a
row reproduces byte-for-byte from ``(seed, loss_rate)`` — the committed
``benchmarks/BENCH_chaos.json`` record is regenerated, not re-measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.reporting import format_table
from ..apps.programs import CountingProgram, RemoteBufferProgram
from ..core.packet_buffer import (
    ENTRY_SEQ_BYTES,
    PacketBufferConfig,
    RemotePacketBuffer,
)
from ..core.state_store import RemoteStateStore, StateStoreConfig
from ..faults import Blackout, FaultPlan, IidLoss
from ..net.headers import UdpHeader
from ..policies import BreakerPolicy
from ..rdma.constants import ATOMIC_OPERAND_BYTES
from ..resilience import CircuitBreakerConfig, SelfHealingChannel
from ..sim.rng import SeedSequence
from ..sim.units import usec
from ..switches.hashing import FiveTuple
from ..workloads.perftest import PacketSink, RawEthernetBw
from .topology import build_testbed

#: Root seed for every chaos run; one number pins the whole timeline.
CHAOS_SEED = 42

#: The swept per-packet loss probabilities (both link directions).
LOSS_RATES = (0.0, 0.001, 0.01, 0.05)

_BASE_SRC_PORT = 10_000
_DST_PORT = 20_000


@dataclass
class ChaosRow:
    """One point of the lossy-link sweep."""

    loss_rate: float
    seed: int
    packets_sent: int
    expected_total: int
    recovered_total: int
    #: Counters whose recovered value differs from the schedule.
    counters_wrong: int
    link_drops: int
    retransmissions: int
    naks: int
    timeouts: int
    duration_ms: float

    @property
    def lost_updates(self) -> int:
        return self.expected_total - self.recovered_total

    @property
    def goodput_updates_per_ms(self) -> float:
        if self.duration_ms <= 0:
            return 0.0
        return self.recovered_total / self.duration_ms


def run_chaos_point(
    loss_rate: float,
    packets: int = 3000,
    flows: int = 16,
    counters: int = 1 << 12,
    seed: int = CHAOS_SEED,
    reliable: bool = True,
    retry_timeout_ns: float = 50_000.0,
) -> ChaosRow:
    """Count *packets* through a link losing each packet with *loss_rate*.

    The expected per-counter totals are fixed by the send schedule (the
    flow rotation and the counter hash), so correctness is exact, not
    statistical.  ``reliable=False`` runs the same sweep without the
    recovery machinery — the ablation showing how much the paper's
    fire-and-forget counters actually lose.
    """
    tb = build_testbed(n_hosts=2, with_memory_server=True)
    program = CountingProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)

    config = StateStoreConfig(
        counters=counters,
        reliable=reliable,
        retry_timeout_ns=retry_timeout_ns,
    )
    channel = tb.controller.open_channel(
        tb.memory_server,
        tb.server_port,
        counters * ATOMIC_OPERAND_BYTES,
    )
    store = RemoteStateStore(tb.switch, channel, config=config)
    program.use_state_store(store)

    plan = FaultPlan(seed=seed)
    wire = None
    if loss_rate > 0.0:
        wire = plan.on_link(tb.server_link, name="server-link")
        plan.at(0.0, wire, IidLoss(loss_rate))
    plan.install(tb.sim)

    src, dst = tb.hosts
    expected: Dict[int, int] = {}
    for seq in range(packets):
        flow = FiveTuple(
            src_ip=src.eth.ip.value,
            dst_ip=dst.eth.ip.value,
            protocol=17,
            src_port=_BASE_SRC_PORT + (seq % flows),
            dst_port=_DST_PORT,
        )
        index = flow.hash() % counters
        expected[index] = expected.get(index, 0) + 1

    def stamp(packet, seq) -> None:
        packet.require(UdpHeader).src_port = _BASE_SRC_PORT + (seq % flows)

    sender = RawEthernetBw(
        tb.sim,
        src,
        dst,
        packet_size=128,
        rate_bps=1e9,
        count=packets,
        dst_port=_DST_PORT,
        stamp=stamp,
    )
    sender.start()
    tb.sim.run()

    # Quiesce: force out everything still accumulated switch-side and let
    # the retransmission machinery drain the in-flight window.
    for _ in range(64):
        if store.pending_value == 0 and store.outstanding == 0:
            break
        store.flush_all()
        tb.sim.run()

    recovered = {
        index: store.read_counter_via_control_plane(index)
        for index in expected
    }
    # Read drop totals off the injector object, not a registry snapshot:
    # under a shared registry a second sweep point's scope is renamed
    # ("...#2") and a name-based snapshot reads the wrong run.
    dropped = wire.dropped if wire is not None else 0
    gen_stats = store.rocegen.stats
    return ChaosRow(
        loss_rate=loss_rate,
        seed=seed,
        packets_sent=packets,
        expected_total=sum(expected.values()),
        recovered_total=sum(recovered.values()),
        counters_wrong=sum(
            1 for index, value in expected.items() if recovered[index] != value
        ),
        link_drops=int(dropped),
        retransmissions=store.stats.retransmissions,
        naks=gen_stats.naks_received,
        timeouts=gen_stats.timeouts,
        duration_ms=tb.sim.now / 1e6,
    )


def run_chaos_sweep(
    loss_rates: Sequence[float] = LOSS_RATES,
    packets: int = 3000,
    seed: int = CHAOS_SEED,
    reliable: bool = True,
) -> List[ChaosRow]:
    """The soak: one row per loss rate, identical workload and seed."""
    return [
        run_chaos_point(rate, packets=packets, seed=seed, reliable=reliable)
        for rate in loss_rates
    ]


def format_chaos(rows: Sequence[ChaosRow]) -> str:
    base = rows[0].goodput_updates_per_ms if rows else 0.0
    return format_table(
        [
            "loss rate",
            "sent",
            "recovered",
            "lost",
            "wrong ctrs",
            "link drops",
            "naks",
            "timeouts",
            "time (ms)",
            "goodput (upd/ms)",
            "vs lossless",
        ],
        [
            [
                f"{r.loss_rate:.3%}",
                r.packets_sent,
                r.recovered_total,
                r.lost_updates,
                r.counters_wrong,
                r.link_drops,
                r.naks,
                r.timeouts,
                f"{r.duration_ms:.2f}",
                f"{r.goodput_updates_per_ms:,.0f}",
                f"{r.goodput_updates_per_ms / base:.1%}" if base > 0 else "-",
            ]
            for r in rows
        ],
        title=(
            "Chaos — reliable counters over a lossy link "
            f"(i.i.d. loss both directions, seed={rows[0].seed if rows else '-'})"
        ),
    )


@dataclass
class RecoveryReport:
    """Outcome of the blackout → degrade → reconnect → reconcile scenario.

    Phase A drives the reliable state store through a blackout longer
    than its retry machinery tolerates; Phase B strands a full remote
    packet-buffer ring behind the same kind of outage and drains it
    after reconnect.  Both phases run under one seed and must land on
    *exact* totals.
    """

    seed: int
    # -- phase A: state store ------------------------------------------------
    packets_sent: int
    expected_total: int
    recovered_total: int
    counters_wrong: int
    degraded_updates: int
    reconcile_reads: int
    reconciled_reissued: int
    store_breaker_opens: int
    store_breaker_closes: int
    store_probe_failures: int
    store_reconnects: int
    store_degraded_ns: float
    store_duration_ms: float
    # -- phase B: packet buffer ----------------------------------------------
    buffered_packets: int
    delivered_packets: int
    out_of_order: int
    lost_in_transit: int
    lost_to_failover: int
    buffer_breaker_opens: int
    buffer_breaker_closes: int
    buffer_probe_failures: int
    buffer_reconnects: int
    buffer_degraded_ns: float
    buffer_duration_ms: float

    @property
    def lost_updates(self) -> int:
        return self.expected_total - self.recovered_total

    @property
    def lost_buffered(self) -> int:
        return self.buffered_packets - self.delivered_packets

    @property
    def degraded_ms(self) -> float:
        return self.store_degraded_ns / 1e6

    @property
    def degraded_goodput_per_ms(self) -> float:
        """Updates absorbed per ms while the store breaker was open."""
        if self.degraded_ms <= 0:
            return 0.0
        return self.degraded_updates / self.degraded_ms

    @property
    def healthy_goodput_per_ms(self) -> float:
        """Updates per ms over the healthy remainder of the run."""
        healthy_ms = self.store_duration_ms - self.degraded_ms
        if healthy_ms <= 0:
            return 0.0
        return (self.expected_total - self.degraded_updates) / healthy_ms


def _recovery_breaker_config() -> CircuitBreakerConfig:
    """Pacing tuned to the scenario's 50 µs retry/read watchdogs."""
    return CircuitBreakerConfig(
        fail_threshold=3,
        close_threshold=1,
        open_timeout_ns=usec(100),
        probe_timeout_ns=usec(60),
        probe_jitter_ns=usec(10),
        backoff=2.0,
    )


def run_chaos_recovery(
    packets: int = 2000,
    flows: int = 16,
    counters: int = 1 << 12,
    seed: int = CHAOS_SEED,
    blackout_start_ns: float = usec(300),
    blackout_ns: float = usec(400),
) -> RecoveryReport:
    """Blackout → degrade → reconnect → reconcile, at one fixed seed.

    **Phase A** counts a fixed schedule into a reliable state store while
    the server link blacks out for *blackout_ns* — far longer than the
    50 µs retry window, so every in-flight Fetch-and-Add stalls.  The
    channel's breaker must open (degraded accumulation), fail at least
    one half-open probe (the blackout outlives the first reopen window),
    then reconnect and reconcile to **exact** per-counter totals.

    **Phase B** stores a burst into a remote packet-buffer ring, blacks
    the link out as draining starts, and requires every stranded entry to
    be delivered in order after the breaker re-closes: zero dropped
    buffered packets.
    """
    seeds = SeedSequence(seed)

    # ---- phase A: state store under blackout -------------------------------
    tb = build_testbed(n_hosts=2, with_memory_server=True)
    program = CountingProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)
    channel = tb.controller.open_channel(
        tb.memory_server, tb.server_port, counters * ATOMIC_OPERAND_BYTES
    )
    store = RemoteStateStore(
        tb.switch,
        channel,
        config=StateStoreConfig(
            counters=counters, reliable=True, retry_timeout_ns=usec(50)
        ),
    )
    program.use_state_store(store)
    guard = SelfHealingChannel(
        tb.controller,
        channel,
        store,
        policy=BreakerPolicy(
            config=_recovery_breaker_config(),
            rng=seeds.stream("breaker[store]"),
        ),
    )

    plan = FaultPlan(seed=seed)
    plan.at(
        blackout_start_ns,
        plan.on_link(tb.server_link, name="server-link"),
        Blackout(),
        duration_ns=blackout_ns,
    )
    plan.install(tb.sim)

    src, dst = tb.hosts
    expected: Dict[int, int] = {}
    for seq in range(packets):
        flow = FiveTuple(
            src_ip=src.eth.ip.value,
            dst_ip=dst.eth.ip.value,
            protocol=17,
            src_port=_BASE_SRC_PORT + (seq % flows),
            dst_port=_DST_PORT,
        )
        expected_index = flow.hash() % counters
        expected[expected_index] = expected.get(expected_index, 0) + 1

    def stamp(packet, seq) -> None:
        packet.require(UdpHeader).src_port = _BASE_SRC_PORT + (seq % flows)

    sender = RawEthernetBw(
        tb.sim,
        src,
        dst,
        packet_size=128,
        rate_bps=1e9,
        count=packets,
        dst_port=_DST_PORT,
        stamp=stamp,
    )
    sender.start()
    tb.sim.run()
    for _ in range(64):
        if store.pending_value == 0 and store.outstanding == 0:
            break
        store.flush_all()
        tb.sim.run()

    recovered = {
        index: store.read_counter_via_control_plane(index)
        for index in expected
    }
    store_duration_ms = tb.sim.now / 1e6
    store_breaker = guard.breaker

    # ---- phase B: packet buffer ring stranded behind a blackout ------------
    tb2 = build_testbed(n_hosts=2, with_memory_server=True)
    buf_program = RemoteBufferProgram()
    for host, port in zip(tb2.hosts, tb2.host_ports):
        buf_program.install(host.eth.mac, port)
    tb2.switch.bind_program(buf_program)
    frame_bytes = 128
    entry_bytes = frame_bytes + ENTRY_SEQ_BYTES
    buf_packets = max(64, packets // 8)
    buf_channel = tb2.controller.open_channel(
        tb2.memory_server, tb2.server_port, (buf_packets + 16) * entry_bytes
    )
    primitive = RemotePacketBuffer(
        tb2.switch,
        buf_channel,
        protected_port=tb2.host_ports[1],
        config=PacketBufferConfig(
            entry_bytes=entry_bytes,
            high_watermark_bytes=0,  # store the whole burst
            low_watermark_bytes=1 << 30,
            manual_load=True,
            max_outstanding_reads=4,
            read_timeout_ns=usec(50),
        ),
    )
    buf_program.use_packet_buffer(primitive)
    buf_guard = SelfHealingChannel(
        tb2.controller,
        buf_channel,
        primitive,
        policy=BreakerPolicy(
            config=_recovery_breaker_config(),
            rng=seeds.stream("breaker[pktbuf]"),
        ),
    )

    sink = PacketSink(tb2.hosts[1], dst_port=_DST_PORT)
    gen = RawEthernetBw(
        tb2.sim,
        tb2.hosts[0],
        tb2.hosts[1],
        packet_size=frame_bytes,
        rate_bps=1e9,
        count=buf_packets,
        dst_port=_DST_PORT,
    )
    gen.start()
    tb2.sim.run()  # store phase: the whole burst lands in the remote ring
    buffered = primitive.stats.stored_packets

    # Black the link out exactly as draining starts: the read chain
    # stalls, the breaker opens, and the ring is stranded until the
    # post-blackout probe succeeds.
    drain_plan = FaultPlan(seed=seed + 1)
    drain_plan.at(
        tb2.sim.now,
        drain_plan.on_link(tb2.server_link, name="server-link"),
        Blackout(),
        duration_ns=blackout_ns,
    )
    drain_plan.install(tb2.sim)
    primitive.start_draining()
    tb2.sim.run()

    _publish_recovery_metrics(
        tb.sim.obs.registry,
        expected_total=sum(expected.values()),
        recovered_total=sum(recovered.values()),
        buffered=buffered,
        delivered=sink.packets,
    )
    return RecoveryReport(
        seed=seed,
        packets_sent=packets,
        expected_total=sum(expected.values()),
        recovered_total=sum(recovered.values()),
        counters_wrong=sum(
            1 for index, value in expected.items() if recovered[index] != value
        ),
        degraded_updates=store.metrics.counter("degraded_updates").value,
        reconcile_reads=store.metrics.counter("reconcile_reads").value,
        reconciled_reissued=store.metrics.counter("reconciled_reissued").value,
        store_breaker_opens=store_breaker.opens,
        store_breaker_closes=store_breaker.closes,
        store_probe_failures=store_breaker.probe_failures,
        store_reconnects=guard.reconnects,
        store_degraded_ns=store_breaker.degraded_ns,
        store_duration_ms=store_duration_ms,
        buffered_packets=buffered,
        delivered_packets=sink.packets,
        out_of_order=sink.out_of_order,
        lost_in_transit=primitive.stats.lost_in_transit,
        lost_to_failover=primitive.stats.lost_to_failover,
        buffer_breaker_opens=buf_guard.breaker.opens,
        buffer_breaker_closes=buf_guard.breaker.closes,
        buffer_probe_failures=buf_guard.breaker.probe_failures,
        buffer_reconnects=buf_guard.reconnects,
        buffer_degraded_ns=buf_guard.breaker.degraded_ns,
        buffer_duration_ms=tb2.sim.now / 1e6,
    )


def _publish_recovery_metrics(
    registry, expected_total: int, recovered_total: int,
    buffered: int, delivered: int,
) -> None:
    """Surface the acceptance numbers under ``chaos.recovery`` so a CI
    metrics artifact can assert on them without re-parsing stdout."""
    scope = registry.unique_scope("chaos.recovery")
    scope.counter("expected_total").inc(expected_total)
    scope.counter("recovered_total").inc(recovered_total)
    scope.counter("lost_updates").inc(expected_total - recovered_total)
    scope.counter("buffered_packets").inc(buffered)
    scope.counter("delivered_packets").inc(delivered)
    scope.counter("lost_buffered").inc(buffered - delivered)


def assert_recovery(report: RecoveryReport) -> None:
    """The acceptance bar for the self-healing scenario."""
    if report.lost_updates != 0 or report.counters_wrong != 0:
        raise AssertionError(
            f"lost {report.lost_updates} updates, "
            f"{report.counters_wrong} counters wrong"
        )
    if report.lost_buffered != 0 or report.out_of_order != 0:
        raise AssertionError(
            f"buffer lost {report.lost_buffered} packets, "
            f"{report.out_of_order} out of order"
        )
    if report.store_breaker_opens == 0 or report.buffer_breaker_opens == 0:
        raise AssertionError("a breaker never opened — no outage exercised")
    if (
        report.store_breaker_closes == 0
        or report.buffer_breaker_closes == 0
    ):
        raise AssertionError("a breaker never re-closed after the outage")
    if report.store_probe_failures == 0:
        raise AssertionError(
            "the blackout should outlive the first half-open probe"
        )


def format_chaos_recovery(report: RecoveryReport) -> str:
    rows = [
        ["state store: expected / recovered",
         f"{report.expected_total} / {report.recovered_total}"],
        ["state store: lost / wrong counters",
         f"{report.lost_updates} / {report.counters_wrong}"],
        ["state store: degraded updates (local)",
         f"{report.degraded_updates}"],
        ["state store: reconcile READs / reissued value",
         f"{report.reconcile_reads} / {report.reconciled_reissued}"],
        ["store breaker: opens / probe fails / closes",
         f"{report.store_breaker_opens} / {report.store_probe_failures} / "
         f"{report.store_breaker_closes}"],
        ["store: QP reconnects", f"{report.store_reconnects}"],
        ["store: degraded time (ms)", f"{report.degraded_ms:.3f}"],
        ["store: goodput degraded vs healthy (upd/ms)",
         f"{report.degraded_goodput_per_ms:,.0f} vs "
         f"{report.healthy_goodput_per_ms:,.0f}"],
        ["pkt buffer: buffered / delivered / out-of-order",
         f"{report.buffered_packets} / {report.delivered_packets} / "
         f"{report.out_of_order}"],
        ["pkt buffer: lost in transit / to failover",
         f"{report.lost_in_transit} / {report.lost_to_failover}"],
        ["buffer breaker: opens / probe fails / closes",
         f"{report.buffer_breaker_opens} / {report.buffer_probe_failures} / "
         f"{report.buffer_breaker_closes}"],
        ["buffer: QP reconnects", f"{report.buffer_reconnects}"],
        ["buffer: degraded time (ms)",
         f"{report.buffer_degraded_ns / 1e6:.3f}"],
    ]
    return format_table(
        ["self-healing recovery", "value"],
        rows,
        title=(
            "Chaos recovery — blackout → degrade → reconnect → reconcile "
            f"(seed={report.seed})"
        ),
    )


def recovery_perf_record(report: RecoveryReport):
    """The self-healing scenario as one ``PerfRecord`` (rides BENCH_chaos).

    The headline extra is the degraded-vs-healthy goodput pair: updates
    absorbed per ms while the breaker was open versus the healthy
    remainder of the run — the cost of an outage under self-healing.
    """
    from ..analysis.profiling import PerfRecord

    record = PerfRecord(
        label="recovery",
        wall_s=(report.store_duration_ms + report.buffer_duration_ms) / 1e3,
        events=report.packets_sent + report.buffered_packets,
    )
    record.extra.update(
        {
            "seed": report.seed,
            "expected_total": report.expected_total,
            "recovered_total": report.recovered_total,
            "lost_updates": report.lost_updates,
            "counters_wrong": report.counters_wrong,
            "degraded_updates": report.degraded_updates,
            "degraded_ms": report.degraded_ms,
            "goodput_degraded_per_ms": report.degraded_goodput_per_ms,
            "goodput_healthy_per_ms": report.healthy_goodput_per_ms,
            "store_breaker_opens": report.store_breaker_opens,
            "store_probe_failures": report.store_probe_failures,
            "store_reconnects": report.store_reconnects,
            "buffered_packets": report.buffered_packets,
            "delivered_packets": report.delivered_packets,
            "lost_buffered": report.lost_buffered,
            "out_of_order": report.out_of_order,
            "buffer_reconnects": report.buffer_reconnects,
        }
    )
    return record


def chaos_perf_record(rows: Sequence[ChaosRow], label: str = "chaos"):
    """The sweep in ``repro-perf-record/v1`` shape (committed as BENCH)."""
    from ..analysis.profiling import PerfRecord, make_report

    records: Dict[str, PerfRecord] = {}
    for row in rows:
        record = PerfRecord(
            label=f"loss[{row.loss_rate:g}]",
            wall_s=row.duration_ms / 1e3,
            events=row.packets_sent,
        )
        record.extra.update(
            {
                "seed": row.seed,
                "loss_rate": row.loss_rate,
                "expected_total": row.expected_total,
                "recovered_total": row.recovered_total,
                "lost_updates": row.lost_updates,
                "counters_wrong": row.counters_wrong,
                "link_drops": row.link_drops,
                "retransmissions": row.retransmissions,
                "naks": row.naks,
                "timeouts": row.timeouts,
                "goodput_updates_per_ms": row.goodput_updates_per_ms,
            }
        )
        records[record.label] = record
    return make_report(label, records)
