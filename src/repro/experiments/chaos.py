"""Chaos soak: the state store under a lossy switch-to-server link.

The paper's counter primitive (§4, Fig. 3b) assumes its RDMA channel is
lossless; §5 then admits "RDMA requests were occasionally dropped at the
NIC" without saying what that costs.  This experiment answers with the
fault subsystem: sweep i.i.d. loss on the memory-server link (both
directions — lost Fetch-and-Adds *and* lost ACKs) while a switch counts
a fixed packet schedule into the remote store, and measure

* **correctness** — with the reliable-mode store (same-PSN retransmit,
  NAK-driven go-back-N, watchdog), every per-counter total must match
  the send schedule exactly: zero lost updates at every loss rate;
* **goodput** — completed counter updates per second of simulated time,
  reported relative to the lossless run.  NAK-driven recovery keeps the
  penalty small (the LinkGuardian argument: react to the loss *event*,
  not the timeout) — the acceptance bar is ≥ 90 % of lossless goodput
  at 1 % loss.

Every fault draws from the :class:`~repro.faults.FaultPlan`'s seed, so a
row reproduces byte-for-byte from ``(seed, loss_rate)`` — the committed
``benchmarks/BENCH_chaos.json`` record is regenerated, not re-measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.reporting import format_table
from ..apps.programs import CountingProgram
from ..core.state_store import RemoteStateStore, StateStoreConfig
from ..faults import FaultPlan, IidLoss
from ..net.headers import UdpHeader
from ..rdma.constants import ATOMIC_OPERAND_BYTES
from ..switches.hashing import FiveTuple
from ..workloads.perftest import RawEthernetBw
from .topology import build_testbed

#: Root seed for every chaos run; one number pins the whole timeline.
CHAOS_SEED = 42

#: The swept per-packet loss probabilities (both link directions).
LOSS_RATES = (0.0, 0.001, 0.01, 0.05)

_BASE_SRC_PORT = 10_000
_DST_PORT = 20_000


@dataclass
class ChaosRow:
    """One point of the lossy-link sweep."""

    loss_rate: float
    seed: int
    packets_sent: int
    expected_total: int
    recovered_total: int
    #: Counters whose recovered value differs from the schedule.
    counters_wrong: int
    link_drops: int
    retransmissions: int
    naks: int
    timeouts: int
    duration_ms: float

    @property
    def lost_updates(self) -> int:
        return self.expected_total - self.recovered_total

    @property
    def goodput_updates_per_ms(self) -> float:
        if self.duration_ms <= 0:
            return 0.0
        return self.recovered_total / self.duration_ms


def run_chaos_point(
    loss_rate: float,
    packets: int = 3000,
    flows: int = 16,
    counters: int = 1 << 12,
    seed: int = CHAOS_SEED,
    reliable: bool = True,
    retry_timeout_ns: float = 50_000.0,
) -> ChaosRow:
    """Count *packets* through a link losing each packet with *loss_rate*.

    The expected per-counter totals are fixed by the send schedule (the
    flow rotation and the counter hash), so correctness is exact, not
    statistical.  ``reliable=False`` runs the same sweep without the
    recovery machinery — the ablation showing how much the paper's
    fire-and-forget counters actually lose.
    """
    tb = build_testbed(n_hosts=2, with_memory_server=True)
    program = CountingProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)

    config = StateStoreConfig(
        counters=counters,
        reliable=reliable,
        retry_timeout_ns=retry_timeout_ns,
    )
    channel = tb.controller.open_channel(
        tb.memory_server,
        tb.server_port,
        counters * ATOMIC_OPERAND_BYTES,
    )
    store = RemoteStateStore(tb.switch, channel, config=config)
    program.use_state_store(store)

    plan = FaultPlan(seed=seed)
    wire = None
    if loss_rate > 0.0:
        wire = plan.on_link(tb.server_link, name="server-link")
        plan.at(0.0, wire, IidLoss(loss_rate))
    plan.install(tb.sim)

    src, dst = tb.hosts
    expected: Dict[int, int] = {}
    for seq in range(packets):
        flow = FiveTuple(
            src_ip=src.eth.ip.value,
            dst_ip=dst.eth.ip.value,
            protocol=17,
            src_port=_BASE_SRC_PORT + (seq % flows),
            dst_port=_DST_PORT,
        )
        index = flow.hash() % counters
        expected[index] = expected.get(index, 0) + 1

    def stamp(packet, seq) -> None:
        packet.require(UdpHeader).src_port = _BASE_SRC_PORT + (seq % flows)

    sender = RawEthernetBw(
        tb.sim,
        src,
        dst,
        packet_size=128,
        rate_bps=1e9,
        count=packets,
        dst_port=_DST_PORT,
        stamp=stamp,
    )
    sender.start()
    tb.sim.run()

    # Quiesce: force out everything still accumulated switch-side and let
    # the retransmission machinery drain the in-flight window.
    for _ in range(64):
        if store.pending_value == 0 and store.outstanding == 0:
            break
        store.flush_all()
        tb.sim.run()

    recovered = {
        index: store.read_counter_via_control_plane(index)
        for index in expected
    }
    # Read drop totals off the injector object, not a registry snapshot:
    # under a shared registry a second sweep point's scope is renamed
    # ("...#2") and a name-based snapshot reads the wrong run.
    dropped = wire.dropped if wire is not None else 0
    gen_stats = store.rocegen.stats
    return ChaosRow(
        loss_rate=loss_rate,
        seed=seed,
        packets_sent=packets,
        expected_total=sum(expected.values()),
        recovered_total=sum(recovered.values()),
        counters_wrong=sum(
            1 for index, value in expected.items() if recovered[index] != value
        ),
        link_drops=int(dropped),
        retransmissions=store.stats.retransmissions,
        naks=gen_stats.naks_received,
        timeouts=gen_stats.timeouts,
        duration_ms=tb.sim.now / 1e6,
    )


def run_chaos_sweep(
    loss_rates: Sequence[float] = LOSS_RATES,
    packets: int = 3000,
    seed: int = CHAOS_SEED,
    reliable: bool = True,
) -> List[ChaosRow]:
    """The soak: one row per loss rate, identical workload and seed."""
    return [
        run_chaos_point(rate, packets=packets, seed=seed, reliable=reliable)
        for rate in loss_rates
    ]


def format_chaos(rows: Sequence[ChaosRow]) -> str:
    base = rows[0].goodput_updates_per_ms if rows else 0.0
    return format_table(
        [
            "loss rate",
            "sent",
            "recovered",
            "lost",
            "wrong ctrs",
            "link drops",
            "naks",
            "timeouts",
            "time (ms)",
            "goodput (upd/ms)",
            "vs lossless",
        ],
        [
            [
                f"{r.loss_rate:.3%}",
                r.packets_sent,
                r.recovered_total,
                r.lost_updates,
                r.counters_wrong,
                r.link_drops,
                r.naks,
                r.timeouts,
                f"{r.duration_ms:.2f}",
                f"{r.goodput_updates_per_ms:,.0f}",
                f"{r.goodput_updates_per_ms / base:.1%}" if base > 0 else "-",
            ]
            for r in rows
        ],
        title=(
            "Chaos — reliable counters over a lossy link "
            f"(i.i.d. loss both directions, seed={rows[0].seed if rows else '-'})"
        ),
    )


def chaos_perf_record(rows: Sequence[ChaosRow], label: str = "chaos"):
    """The sweep in ``repro-perf-record/v1`` shape (committed as BENCH)."""
    from ..analysis.profiling import PerfRecord, make_report

    records: Dict[str, PerfRecord] = {}
    for row in rows:
        record = PerfRecord(
            label=f"loss[{row.loss_rate:g}]",
            wall_s=row.duration_ms / 1e3,
            events=row.packets_sent,
        )
        record.extra.update(
            {
                "seed": row.seed,
                "loss_rate": row.loss_rate,
                "expected_total": row.expected_total,
                "recovered_total": row.recovered_total,
                "lost_updates": row.lost_updates,
                "counters_wrong": row.counters_wrong,
                "link_drops": row.link_drops,
                "retransmissions": row.retransmissions,
                "naks": row.naks,
                "timeouts": row.timeouts,
                "goodput_updates_per_ms": row.goodput_updates_per_ms,
            }
        )
        records[record.label] = record
    return make_report(label, records)
