"""§5 packet-buffer microbenchmark: lossless store and forward rates.

Paper procedure: a P4 program "first stores all incoming packets to the
remote buffer, and later loads and forwards them to the destination port.
For microbenchmark purpose, we manually start the two steps respectively."
Sweep the offered rate and report the maximum rate with zero loss.

Paper results (1500 B MTU frames, 40 GbE):

* store 34.1 Gbps lossless, forward back at 37.4 Gbps,
* native server-to-server RDMA baseline "only 4.4 % faster".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..analysis.reporting import format_table
from ..apps.programs import RemoteBufferProgram
from ..core.packet_buffer import (
    ENTRY_SEQ_BYTES,
    PacketBufferConfig,
    RemotePacketBuffer,
)
from ..rdma.constants import Opcode
from ..sim.units import SEC, gbps
from ..baselines.native_rdma import NativeRdmaStreamer
from ..workloads.perftest import PacketSink, RawEthernetBw
from .topology import build_testbed


@dataclass
class StoreLoadResult:
    """Outcome of one offered-rate point."""

    offered_gbps: float
    packets: int
    stored: int
    lossless: bool
    store_rate_gbps: float
    forward_rate_gbps: float
    delivered: int


@dataclass
class PacketBufferRateReport:
    points: List[StoreLoadResult]
    native_write_gbps: float
    native_read_gbps: float

    @property
    def max_lossless_store_gbps(self) -> float:
        lossless = [p.store_rate_gbps for p in self.points if p.lossless]
        return max(lossless) if lossless else 0.0

    @property
    def forward_rate_gbps(self) -> float:
        lossless = [p for p in self.points if p.lossless]
        return lossless[-1].forward_rate_gbps if lossless else 0.0

    @property
    def native_advantage_pct(self) -> float:
        """How much faster native RDMA WRITE is than the lossless store."""
        store = self.max_lossless_store_gbps
        if store <= 0:
            return float("inf")
        return (self.native_write_gbps - store) / store * 100.0


def run_store_load_point(
    offered_gbps: float, packets: int = 2000, packet_size: int = 1500
) -> StoreLoadResult:
    """One offered-rate point: store-all phase, then manual drain phase."""
    tb = build_testbed(n_hosts=2)
    program = RemoteBufferProgram()
    for host, port in zip(tb.hosts, tb.host_ports):
        program.install(host.eth.mac, port)
    tb.switch.bind_program(program)
    # Entries exactly fit the frames under test (the paper sizes entries to
    # "full-sized Ethernet frame"; reading slack bytes would waste return
    # bandwidth since each load fetches the whole entry).
    entry_bytes = packet_size + ENTRY_SEQ_BYTES
    channel = tb.controller.open_channel(
        tb.memory_server, tb.server_port, (packets + 16) * entry_bytes
    )
    primitive = RemotePacketBuffer(
        tb.switch,
        channel,
        protected_port=tb.host_ports[1],
        config=PacketBufferConfig(
            entry_bytes=entry_bytes,
            high_watermark_bytes=0,   # store *all* incoming packets
            low_watermark_bytes=1 << 30,  # drain continuously once started
            manual_load=True,
            max_outstanding_reads=8,
        ),
    )
    program.use_packet_buffer(primitive)

    sink = PacketSink(tb.hosts[1], dst_port=20_000)
    gen = RawEthernetBw(
        tb.sim, tb.hosts[0], tb.hosts[1],
        packet_size=packet_size, rate_bps=gbps(offered_gbps), count=packets,
    )
    gen.start()
    tb.sim.run()  # store phase completes (no loads yet)

    store_window_ns = gen.report.duration_ns
    stored = primitive.stats.stored_packets
    server_rnic = tb.memory_server.rnic
    lossless = (
        stored == packets
        and server_rnic.stats.writes_executed == packets
        and server_rnic.stats.rx_overflow_drops == 0
        and primitive.stats.ring_full_drops == 0
        and tb.switch.tm.total_dropped_packets == 0
    )
    store_rate = (
        gen.report.bytes_sent * 8 * SEC / store_window_ns
        if store_window_ns > 0
        else 0.0
    )

    # Phase 2: load everything back and forward to the destination.
    primitive.start_draining()
    tb.sim.run()
    forward_rate = sink.goodput_bps()

    return StoreLoadResult(
        offered_gbps=offered_gbps,
        packets=packets,
        stored=stored,
        lossless=lossless,
        store_rate_gbps=store_rate / 1e9,
        forward_rate_gbps=forward_rate / 1e9,
        delivered=sink.packets,
    )


def run_native_baseline(
    opcode: Opcode, operations: int = 2000, message_bytes: int = 1500
) -> float:
    """Native server-to-server RDMA goodput through the switch, in Gbps."""
    tb = build_testbed(n_hosts=1)
    program = RemoteBufferProgram()  # plain static L2; no primitive attached
    program.install(tb.hosts[0].eth.mac, tb.host_ports[0])
    program.install(tb.memory_server.eth.mac, tb.server_port)
    tb.switch.bind_program(program)
    region = tb.memory_server.lend_memory(message_bytes * (operations + 1))
    streamer = NativeRdmaStreamer(
        tb.sim,
        tb.hosts[0],
        tb.memory_server,
        region,
        opcode=opcode,
        message_bytes=message_bytes,
        operations=operations,
    )
    streamer.start()
    tb.sim.run()
    report = streamer.report()
    if report.failures:
        raise RuntimeError(f"native baseline saw {report.failures} failures")
    return report.goodput_bps / 1e9


def run_packet_buffer_rate(
    offered_rates_gbps: Sequence[float] = (30, 32, 33, 34, 35, 36, 37, 38, 39, 40),
    packets: int = 2000,
) -> PacketBufferRateReport:
    """Regenerate the §5 store/forward rate result."""
    points = [run_store_load_point(rate, packets) for rate in offered_rates_gbps]
    return PacketBufferRateReport(
        points=points,
        native_write_gbps=run_native_baseline(Opcode.RDMA_WRITE_ONLY, packets),
        native_read_gbps=run_native_baseline(Opcode.RDMA_READ_REQUEST, packets),
    )


def format_packet_buffer_rate(report: PacketBufferRateReport) -> str:
    table = format_table(
        ["offered (Gbps)", "stored", "lossless", "store rate (Gbps)", "forward rate (Gbps)"],
        [
            [
                f"{p.offered_gbps:.1f}",
                f"{p.stored}/{p.packets}",
                "yes" if p.lossless else "no",
                f"{p.store_rate_gbps:.2f}",
                f"{p.forward_rate_gbps:.2f}",
            ]
            for p in report.points
        ],
        title="§5 packet buffer — store/forward rate sweep (1500 B frames)",
    )
    summary = (
        f"\nmax lossless store rate : {report.max_lossless_store_gbps:.1f} Gbps"
        f"\nforward rate            : {report.forward_rate_gbps:.1f} Gbps"
        f"\nnative RDMA WRITE       : {report.native_write_gbps:.1f} Gbps"
        f"\nnative RDMA READ        : {report.native_read_gbps:.1f} Gbps"
        f"\nnative WRITE advantage  : {report.native_advantage_pct:.1f}%"
        "\n(paper: store 34.1, forward 37.4, native only 4.4% faster)"
    )
    return table + summary
