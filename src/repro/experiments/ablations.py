"""§7 ablations: the design choices the paper leaves open, quantified.

1. **Fetch-and-Add batching** — combine k counter updates per atomic op
   ("to reduce the bandwidth overhead ... combine multiple counter
   updates into a single operation, at the cost of some delay").
2. **Outstanding-atomics window** — the switch must track RNIC progress;
   exceeding the RNIC's limit drops requests.
3. **SRAM cache size** — hit rate and latency of the remote lookup table
   as the local cache grows (§2.2's "local memory serves as cache").
4. **Bounce vs recirculate** — §7's alternative lookup design that holds
   the packet locally and READs only the action, trading recirculation
   passes for remote bandwidth.
5. **RDMA drop sensitivity** — state-store accuracy under lossy links,
   best-effort vs the NAK-resync machinery.
6. **RDMA prioritization** — §7's "prioritize these RDMA packets so that
   they are less likely to be dropped": strict priority + reserved buffer
   headroom under a congested memory-server port.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..analysis.reporting import format_table
from ..apps.programs import CountingProgram, RemoteLookupProgram
from ..core.lookup_table import (
    ACTION_SET_DSCP,
    LookupTableConfig,
    RemoteAction,
    RemoteLookupTable,
)
from ..core.state_store import RemoteStateStore, StateStoreConfig
from ..rdma.constants import ATOMIC_OPERAND_BYTES
from ..rdma.rnic import RnicConfig
from ..sim.units import gbps, to_usec
from ..switches.hashing import FiveTuple
from ..workloads.factory import udp_between
from ..workloads.flows import ZipfFlowWorkload
from ..workloads.perftest import RawEthernetBw
from .topology import build_testbed


# -- 1. Fetch-and-Add batching -------------------------------------------------

@dataclass
class BatchingResult:
    batch_size: int
    packets: int
    operations: int
    request_bytes: int
    counted_remotely: int
    pending_locally: int

    @property
    def ops_per_packet(self) -> float:
        return self.operations / self.packets if self.packets else 0.0


def run_batching_ablation(
    batch_sizes: Sequence[int] = (1, 2, 4, 8, 16, 32),
    packets: int = 4000,
) -> List[BatchingResult]:
    results = []
    for batch in batch_sizes:
        tb = build_testbed(n_hosts=2)
        program = CountingProgram()
        for host, port in zip(tb.hosts, tb.host_ports):
            program.install(host.eth.mac, port)
        tb.switch.bind_program(program)
        config = StateStoreConfig(counters=1 << 12, batch_size=batch)
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port,
            config.counters * ATOMIC_OPERAND_BYTES,
        )
        store = RemoteStateStore(tb.switch, channel, config=config)
        program.use_state_store(store)
        gen = RawEthernetBw(
            tb.sim, tb.hosts[0], tb.hosts[1],
            packet_size=256, rate_bps=gbps(40), count=packets,
        )
        gen.start()
        tb.sim.run()
        packet = udp_between(tb.hosts[0], tb.hosts[1], 256)
        counted = store.read_counter_via_control_plane(store.index_of(store.key_of(packet)))
        results.append(
            BatchingResult(
                batch_size=batch,
                packets=packets,
                operations=store.stats.operations_issued,
                request_bytes=store.rocegen.stats.request_wire_bytes,
                counted_remotely=counted,
                pending_locally=store.pending_value,
            )
        )
    return results


def format_batching(results: Sequence[BatchingResult]) -> str:
    return format_table(
        ["batch", "F&A ops", "ops/packet", "request bytes", "remote count", "pending"],
        [
            [
                r.batch_size,
                r.operations,
                f"{r.ops_per_packet:.3f}",
                r.request_bytes,
                r.counted_remotely,
                r.pending_locally,
            ]
            for r in results
        ],
        title="§7 ablation — combining counter updates per Fetch-and-Add",
    )


# -- 2. outstanding-atomics window ----------------------------------------------

@dataclass
class WindowResult:
    window: int
    rnic_limit: int
    packets: int
    counted_remotely: int
    pending_locally: int
    rnic_overflow_drops: int

    @property
    def accurate(self) -> bool:
        return self.counted_remotely + self.pending_locally == self.packets


def run_window_ablation(
    windows: Sequence[int] = (1, 4, 16, 64),
    rnic_limit: int = 16,
    packets: int = 3000,
) -> List[WindowResult]:
    """Sweep the switch's outstanding cap across the RNIC's real limit.

    Beyond ``rnic_limit`` the RNIC atomic engine overflows and silently
    drops requests — counts are lost.  This is exactly why §4 makes the
    switch track outstanding requests.
    """
    results = []
    for window in windows:
        tb = build_testbed(
            n_hosts=2,
            rnic_config=RnicConfig(max_outstanding_atomics=rnic_limit),
        )
        program = CountingProgram()
        for host, port in zip(tb.hosts, tb.host_ports):
            program.install(host.eth.mac, port)
        tb.switch.bind_program(program)
        config = StateStoreConfig(counters=1 << 12, max_outstanding=window)
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port,
            config.counters * ATOMIC_OPERAND_BYTES,
        )
        store = RemoteStateStore(tb.switch, channel, config=config)
        program.use_state_store(store)
        gen = RawEthernetBw(
            tb.sim, tb.hosts[0], tb.hosts[1],
            packet_size=256, rate_bps=gbps(40), count=packets,
        )
        gen.start()
        tb.sim.run()
        packet = udp_between(tb.hosts[0], tb.hosts[1], 256)
        results.append(
            WindowResult(
                window=window,
                rnic_limit=rnic_limit,
                packets=packets,
                counted_remotely=store.read_counter_via_control_plane(
                    store.index_of(store.key_of(packet))
                ),
                pending_locally=store.pending_value,
                rnic_overflow_drops=(
                    tb.memory_server.rnic.stats.atomic_overflow_drops
                ),
            )
        )
    return results


def format_window(results: Sequence[WindowResult]) -> str:
    return format_table(
        ["window", "RNIC limit", "remote count", "pending", "RNIC drops", "accurate"],
        [
            [
                r.window,
                r.rnic_limit,
                r.counted_remotely,
                r.pending_locally,
                r.rnic_overflow_drops,
                "yes" if r.accurate else "NO",
            ]
            for r in results
        ],
        title="§7 ablation — outstanding-atomics window vs RNIC limit",
    )


# -- 3. lookup cache size ----------------------------------------------------------

@dataclass
class CacheResult:
    cache_entries: int
    packets: int
    hit_rate: float
    remote_lookups: int
    median_latency_us: float


def run_cache_ablation(
    cache_sizes: Sequence[int] = (0, 64, 256, 1024, 4096),
    flows: int = 4096,
    packets: int = 4000,
    alpha: float = 1.0,
    seed: int = 0,
) -> List[CacheResult]:
    from ..analysis.stats import percentile

    results = []
    for cache_entries in cache_sizes:
        tb = build_testbed(n_hosts=2)
        program = RemoteLookupProgram()
        for host, port in zip(tb.hosts, tb.host_ports):
            program.install(host.eth.mac, port)
        tb.switch.bind_program(program)
        config = LookupTableConfig(
            entries=1 << 15, cache_entries=cache_entries
        )
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port,
            config.entries * config.entry_bytes,
        )
        table = RemoteLookupTable(tb.switch, channel, config=config)
        program.use_lookup_table(table)

        workload = ZipfFlowWorkload(
            tb.sim, tb.hosts[0], tb.hosts[1],
            flows=flows, alpha=alpha, packet_size=256,
            rate_bps=gbps(2), count=packets, seed=seed,
        )
        # Install a DSCP action for every flow the workload may use.
        for rank in range(flows):
            key = workload.flow_key(rank)
            table.install(
                FiveTuple(
                    src_ip=tb.hosts[0].eth.ip.value,
                    dst_ip=tb.hosts[1].eth.ip.value,
                    protocol=17,
                    src_port=key.src_port,
                    dst_port=key.dst_port,
                ),
                RemoteAction(ACTION_SET_DSCP, rank % 64),
            )
        latencies: List[float] = []
        tb.hosts[1].packet_handlers.append(
            lambda p, i: latencies.append(tb.sim.now - p.meta["sent_at"])
            if "sent_at" in p.meta
            else None
        )
        workload.start()
        tb.sim.run()
        total = table.stats.local_hits + table.stats.remote_lookups
        results.append(
            CacheResult(
                cache_entries=cache_entries,
                packets=packets,
                hit_rate=table.stats.local_hits / total if total else 0.0,
                remote_lookups=table.stats.remote_lookups,
                median_latency_us=(
                    to_usec(percentile(latencies, 50)) if latencies else 0.0
                ),
            )
        )
    return results


def format_cache(results: Sequence[CacheResult]) -> str:
    return format_table(
        ["cache entries", "hit rate", "remote lookups", "median latency (us)"],
        [
            [
                r.cache_entries,
                f"{r.hit_rate * 100:.1f}%",
                r.remote_lookups,
                f"{r.median_latency_us:.2f}",
            ]
            for r in results
        ],
        title="§2.2 ablation — local SRAM cache size for the remote table",
    )


# -- 4. bounce vs recirculate ---------------------------------------------------------

@dataclass
class ModeResult:
    mode: str
    packets: int
    remote_request_bytes: int
    recirculation_passes: int
    median_latency_us: float


def run_mode_ablation(
    packets: int = 1500, packet_size: int = 512, seed: int = 0
) -> List[ModeResult]:
    from ..analysis.stats import percentile

    results = []
    for mode in ("bounce", "recirculate"):
        tb = build_testbed(n_hosts=2)
        program = RemoteLookupProgram()
        for host, port in zip(tb.hosts, tb.host_ports):
            program.install(host.eth.mac, port)
        tb.switch.bind_program(program)
        config = LookupTableConfig(
            entries=1 << 12, cache_entries=0, mode=mode
        )
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port,
            config.entries * config.entry_bytes,
        )
        table = RemoteLookupTable(tb.switch, channel, config=config)
        program.use_lookup_table(table)
        flow = FiveTuple(
            src_ip=tb.hosts[0].eth.ip.value,
            dst_ip=tb.hosts[1].eth.ip.value,
            protocol=17,
            src_port=10_000,
            dst_port=20_000,
        )
        table.install(flow, RemoteAction(ACTION_SET_DSCP, 30))
        latencies: List[float] = []
        tb.hosts[1].packet_handlers.append(
            lambda p, i: latencies.append(tb.sim.now - p.meta["sent_at"])
            if "sent_at" in p.meta
            else None
        )
        gen = RawEthernetBw(
            tb.sim, tb.hosts[0], tb.hosts[1],
            packet_size=packet_size, rate_bps=gbps(5), count=packets,
        )
        gen.start()
        tb.sim.run()
        results.append(
            ModeResult(
                mode=mode,
                packets=packets,
                remote_request_bytes=table.rocegen.stats.request_wire_bytes,
                recirculation_passes=table.stats.recirculation_passes,
                median_latency_us=(
                    to_usec(percentile(latencies, 50)) if latencies else 0.0
                ),
            )
        )
    return results


def format_mode(results: Sequence[ModeResult]) -> str:
    return format_table(
        ["mode", "remote request bytes", "recirc passes", "median latency (us)"],
        [
            [
                r.mode,
                r.remote_request_bytes,
                r.recirculation_passes,
                f"{r.median_latency_us:.2f}",
            ]
            for r in results
        ],
        title="§7 ablation — packet bounce vs local recirculation",
    )


# -- 5. drop sensitivity ----------------------------------------------------------------

@dataclass
class DropResult:
    loss_probability: float
    reliable: bool
    packets: int
    counted_remotely: int
    naks_seen: int
    retransmissions: int

    @property
    def count_error_rate(self) -> float:
        if self.packets == 0:
            return 0.0
        return abs(self.packets - self.counted_remotely) / self.packets


def run_drop_ablation(
    loss_probabilities: Sequence[float] = (0.0, 0.001, 0.01, 0.05),
    packets: int = 3000,
    modes: Sequence[bool] = (False, True),
) -> List[DropResult]:
    """State-store accuracy under a lossy switch↔server link (§7).

    Runs best-effort mode (the paper's prototype: a drop "would affect the
    accuracy of the state") and the §7 reliability extension (ACK/NAK
    handling + same-PSN retransmission: exact counts despite drops).
    """
    results = []
    for reliable in modes:
        for loss in loss_probabilities:
            tb = build_testbed(n_hosts=2)
            tb.server_link.loss_probability = loss
            program = CountingProgram()
            for host, port in zip(tb.hosts, tb.host_ports):
                program.install(host.eth.mac, port)
            tb.switch.bind_program(program)
            config = StateStoreConfig(counters=1 << 12, reliable=reliable)
            channel = tb.controller.open_channel(
                tb.memory_server, tb.server_port,
                config.counters * ATOMIC_OPERAND_BYTES,
            )
            store = RemoteStateStore(tb.switch, channel, config=config)
            program.use_state_store(store)
            gen = RawEthernetBw(
                tb.sim, tb.hosts[0], tb.hosts[1],
                packet_size=256, rate_bps=gbps(40), count=packets,
            )
            gen.start()
            tb.sim.run(max_events=5_000_000)
            packet = udp_between(tb.hosts[0], tb.hosts[1], 256)
            results.append(
                DropResult(
                    loss_probability=loss,
                    reliable=reliable,
                    packets=packets,
                    counted_remotely=store.read_counter_via_control_plane(
                        store.index_of(store.key_of(packet))
                    ),
                    naks_seen=store.stats.naks_received,
                    retransmissions=(
                        store.stats.retransmissions
                        + store.stats.requeued_after_nak
                    ),
                )
            )
    return results


def format_drops(results: Sequence[DropResult]) -> str:
    return format_table(
        ["mode", "loss prob", "sent", "remote count", "count error", "NAKs", "retx"],
        [
            [
                "reliable" if r.reliable else "best-effort",
                f"{r.loss_probability:.3f}",
                r.packets,
                r.counted_remotely,
                f"{r.count_error_rate * 100:.2f}%",
                r.naks_seen,
                r.retransmissions,
            ]
            for r in results
        ],
        title="§7 ablation — RDMA packet drops vs counter accuracy",
    )


# -- 6. RDMA prioritization ----------------------------------------------------------

@dataclass
class PriorityResult:
    protected: bool
    lookups: int
    resolved: int
    delivered: int
    bounce_naks: int
    background_drops: int

    @property
    def resolution_rate(self) -> float:
        return self.resolved / self.lookups if self.lookups else 0.0


def run_priority_ablation(
    lookups: int = 200, background_packets: int = 3000
) -> List["PriorityResult"]:
    """§7 RDMA prioritization under a congested memory-server port.

    Bounced lookups (packet-sized RDMA WRITEs) share the server port with
    2:1 oversubscribed background UDP; with strict priority + reserved
    headroom the RDMA leg becomes loss-free.
    """
    from ..switches.traffic_manager import TrafficManagerConfig
    from ..sim.units import kib
    from ..net.headers import UdpHeader
    from ..workloads.perftest import PacketSink

    results = []
    for protected in (False, True):
        tm = TrafficManagerConfig(
            buffer_bytes=kib(64),
            rdma_priority=protected,
            rdma_reserved_bytes=kib(16) if protected else 0,
        )
        tb = build_testbed(n_hosts=3, tm_config=tm)
        from ..apps.programs import RemoteLookupProgram

        program = RemoteLookupProgram()
        for host, port in zip(tb.hosts, tb.host_ports):
            program.install(host.eth.mac, port)
        program.install(tb.memory_server.eth.mac, tb.server_port)
        tb.switch.bind_program(program)
        config = LookupTableConfig(entries=1 << 10, cache_entries=0)
        channel = tb.controller.open_channel(
            tb.memory_server, tb.server_port,
            config.entries * config.entry_bytes,
        )
        table = RemoteLookupTable(tb.switch, channel, config=config)
        program.use_lookup_table(table)
        program.lookup_filter = (
            lambda p: p.find(UdpHeader) is not None
            and p.find(UdpHeader).dst_port == 20_000
        )
        flow = FiveTuple(
            src_ip=tb.hosts[0].eth.ip.value,
            dst_ip=tb.hosts[1].eth.ip.value,
            protocol=17,
            src_port=10_000,
            dst_port=20_000,
        )
        table.install(flow, RemoteAction(ACTION_SET_DSCP, 5))

        sink = PacketSink(tb.hosts[1], dst_port=20_000)
        gen = RawEthernetBw(
            tb.sim, tb.hosts[0], tb.hosts[1],
            packet_size=1400, rate_bps=gbps(2), count=lookups,
            src_port=10_000,
        )
        gen.start()
        for i, host in enumerate((tb.hosts[1], tb.hosts[2])):
            RawEthernetBw(
                tb.sim, host, tb.memory_server,
                packet_size=1500, rate_bps=gbps(40),
                count=background_packets // 2,
                src_port=31_000 + i, dst_port=31_001,
            ).start()
        tb.sim.run(max_events=4_000_000)
        results.append(
            PriorityResult(
                protected=protected,
                lookups=table.stats.remote_lookups,
                resolved=table.stats.remote_hits,
                delivered=sink.packets,
                bounce_naks=table.rocegen.stats.naks_received,
                background_drops=tb.switch.port_queue(
                    tb.server_port
                ).dropped_packets,
            )
        )
    return results


def format_priority(results: Sequence["PriorityResult"]) -> str:
    return format_table(
        ["RDMA priority", "lookups", "resolved", "delivered", "bounce NAKs", "bg drops"],
        [
            [
                "on" if r.protected else "off",
                r.lookups,
                r.resolved,
                r.delivered,
                r.bounce_naks,
                r.background_drops,
            ]
            for r in results
        ],
        title="§7 ablation — prioritizing RDMA packets under congestion",
    )
