"""Hash externs available to data-plane programs (CRC16/CRC32 family).

Tofino-class ASICs expose CRC-based hash units to the match-action
pipeline; programs use them for ECMP, for indexing register arrays, and —
in this paper — for computing the remote-table entry index from a packet's
5-tuple (§4, lookup table primitive).

CRC16 (CCITT, reflected: the classic ``crc16`` polynomial 0x8005 variant
used by P4 targets) is implemented table-driven from scratch; CRC32
delegates to :func:`zlib.crc32` (the same IEEE 802.3 polynomial hardware
uses).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Iterable, Tuple, Union

from ..net.headers import Ipv4Header, UdpHeader
from ..net.packet import Packet

FieldValue = Union[int, bytes]


def _build_crc16_table(poly: int = 0xA001) -> Tuple[int, ...]:
    """Build the reflected CRC-16 lookup table (poly 0x8005 reflected)."""
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ poly
            else:
                crc >>= 1
        table.append(crc)
    return tuple(table)


_CRC16_TABLE = _build_crc16_table()


def crc16(data: bytes) -> int:
    """CRC-16 (ARC variant: poly 0x8005 reflected, init 0) of *data*."""
    crc = 0x0000
    for byte in data:
        crc = (crc >> 8) ^ _CRC16_TABLE[(crc ^ byte) & 0xFF]
    return crc & 0xFFFF


def crc32(data: bytes) -> int:
    """CRC-32 (IEEE 802.3) of *data*."""
    return zlib.crc32(data) & 0xFFFFFFFF


def _field_bytes(value: FieldValue) -> bytes:
    """Serialize one hash input field the way the hash unit would see it."""
    if isinstance(value, bytes):
        return value
    if isinstance(value, int):
        if value < 0:
            raise ValueError(f"hash fields must be non-negative, got {value}")
        length = max(1, (value.bit_length() + 7) // 8)
        return value.to_bytes(length, "big")
    # Address types expose .to_bytes().
    to_bytes = getattr(value, "to_bytes", None)
    if callable(to_bytes):
        return to_bytes()
    raise TypeError(f"cannot hash field of type {type(value).__name__}")


def hash_fields(fields: Iterable[FieldValue], width_bits: int = 32) -> int:
    """Hash a tuple of fields into ``width_bits`` bits (CRC32-based).

    This is the ``hash(...)`` extern a P4 program calls; the field list is
    concatenated with length prefixes so (1, 23) and (12, 3) differ.
    """
    parts = []
    for value in fields:
        raw = _field_bytes(value)
        parts.append(struct.pack("!H", len(raw)))
        parts.append(raw)
    digest = crc32(b"".join(parts))
    if width_bits >= 32:
        return digest
    return digest & ((1 << width_bits) - 1)


@dataclass(frozen=True)
class FiveTuple:
    """The classic flow key: (src IP, dst IP, protocol, src port, dst port)."""

    src_ip: int
    dst_ip: int
    protocol: int
    src_port: int
    dst_port: int

    @classmethod
    def of(cls, packet: Packet) -> "FiveTuple":
        """Extract the 5-tuple from a structured packet.

        Non-UDP/TCP packets hash with zero ports, matching what a parser
        that didn't extract L4 would produce.
        """
        ip = packet.require(Ipv4Header)
        udp = packet.find(UdpHeader)
        src_port = udp.src_port if udp is not None else 0
        dst_port = udp.dst_port if udp is not None else 0
        return cls(
            src_ip=ip.src.value,
            dst_ip=ip.dst.value,
            protocol=ip.protocol,
            src_port=src_port,
            dst_port=dst_port,
        )

    def pack(self) -> bytes:
        return struct.pack(
            "!IIBHH",
            self.src_ip,
            self.dst_ip,
            self.protocol,
            self.src_port,
            self.dst_port,
        )

    def hash(self, width_bits: int = 32) -> int:
        """CRC32 hash of the packed 5-tuple, truncated to ``width_bits``."""
        digest = crc32(self.pack())
        if width_bits >= 32:
            return digest
        return digest & ((1 << width_bits) - 1)
