"""The match-action pipeline programming model.

A :class:`SwitchProgram` is the Python analogue of a P4 program: it gets a
:class:`PipelineContext` per packet and decides forwarding by calling
context actions (forward / drop / emit / recirculate / flood).  The
*primitive actions* of the paper are ordinary methods invoked from a
program's ``on_ingress`` — exactly how the paper packages them ("we design
the primitives as data plane actions so that switch data plane programs can
easily adopt the primitives", §3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from ..net.packet import Packet

if TYPE_CHECKING:
    from .switch import ProgrammableSwitch


class PipelineContext:
    """Per-packet forwarding decisions collected during pipeline execution."""

    def __init__(self, switch: "ProgrammableSwitch", in_port: Optional[int]) -> None:
        self.switch = switch
        self.in_port = in_port
        self.egress_port: Optional[int] = None
        self.dropped = False
        self.flooded = False
        self.recirculated = False
        #: Additional packets to transmit: (packet, egress port).
        self.emitted: List[Tuple[Packet, int]] = []

    def forward(self, port: int) -> None:
        """Send the packet out of *port* (unicast)."""
        self.egress_port = port
        self.dropped = False
        self.flooded = False

    def drop(self) -> None:
        """Discard the packet."""
        self.dropped = True
        self.egress_port = None
        self.flooded = False

    def flood(self) -> None:
        """Send the packet out of every port except the ingress port."""
        self.flooded = True
        self.dropped = False
        self.egress_port = None

    def emit(self, packet: Packet, port: int) -> None:
        """Transmit an additional, program-generated packet out of *port*.

        This is how primitives issue RDMA requests: the crafted RoCE packet
        is emitted toward the memory server's port while the original
        packet follows its own verdict.
        """
        self.emitted.append((packet, port))

    def clone_to(self, port: int) -> Packet:
        """Mirror the current packet to *port*; returns the clone for
        further modification (truncation, header rewrites)."""
        raise NotImplementedError  # bound per-packet by the switch

    def recirculate(self) -> None:
        """Send the packet through the pipeline again (loopback port).

        Costs one extra pipeline pass of latency and consumes internal
        bandwidth; the §7 ablation compares this against packet bouncing.
        """
        self.recirculated = True
        self.dropped = False
        self.egress_port = None


class SwitchProgram:
    """Base class for data-plane programs.

    Subclasses implement :meth:`on_ingress`.  ``attach`` is called once
    when the program is bound to a switch; programs allocate their tables
    and register arrays there, mirroring P4 resource declaration.
    """

    def attach(self, switch: "ProgrammableSwitch") -> None:
        self.switch = switch

    def on_ingress(self, ctx: PipelineContext, packet: Packet) -> None:
        raise NotImplementedError

    def on_recirculate(self, ctx: PipelineContext, packet: Packet) -> None:
        """Handle a recirculated packet (defaults to normal ingress)."""
        self.on_ingress(ctx, packet)
