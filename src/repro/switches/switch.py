"""The programmable switch node.

Models a Tofino-class single-chip switch: N ports, a fixed-latency
match-action pipeline, a traffic manager with a shared packet buffer, and a
recirculation path.  A bound :class:`~repro.switches.pipeline.SwitchProgram`
decides forwarding; the paper's primitives plug into the same program API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..net.addresses import Ipv4Address, MacAddress
from ..net.node import Interface, Node
from ..net.packet import Packet
from ..sim.simulator import Simulator
from .pipeline import PipelineContext, SwitchProgram
from .traffic_manager import TrafficManager, TrafficManagerConfig


@dataclass
class SwitchConfig:
    """Pipeline timing parameters (Tofino-class defaults)."""

    #: One pass through parser + match-action stages + deparser.
    pipeline_latency_ns: float = 400.0
    #: Extra latency for a recirculation pass (loopback port + re-parse).
    recirculation_latency_ns: float = 400.0
    #: Safety bound on recirculations per packet (hardware programs must
    #: bound this too; unbounded recirculation melts the pipeline).
    max_recirculations: int = 8


@dataclass
class SwitchStats:
    rx_packets: int = 0
    tx_packets: int = 0
    processed: int = 0
    dropped_by_program: int = 0
    recirculations: int = 0
    recirculation_overflow_drops: int = 0


class ProgrammableSwitch(Node):
    """A P4-style programmable switch with a shared-buffer traffic manager."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config: Optional[SwitchConfig] = None,
        tm_config: Optional[TrafficManagerConfig] = None,
    ) -> None:
        super().__init__(sim, name)
        self.config = config if config is not None else SwitchConfig()
        self.tm = TrafficManager(tm_config)
        self.tm.clock = lambda: self.sim.now
        self.stats = SwitchStats()
        self.program: Optional[SwitchProgram] = None
        self._ports: List[Interface] = []
        self._port_of_interface: Dict[Interface, int] = {}

    # -- port management -----------------------------------------------------------

    def add_port(
        self, mac: MacAddress, ip: Optional[Ipv4Address] = None
    ) -> int:
        """Create the next port; returns its port number."""
        port = len(self._ports)
        queue = self.tm.queue_for(port)
        interface = self.add_interface(f"port{port}", MacAddress(mac), ip=ip, queue=queue)
        self._ports.append(interface)
        self._port_of_interface[interface] = port
        return port

    @property
    def port_count(self) -> int:
        return len(self._ports)

    def port_interface(self, port: int) -> Interface:
        return self._ports[port]

    def port_queue(self, port: int):
        return self.tm.queue_for(port)

    def port_of(self, interface: Interface) -> int:
        return self._port_of_interface[interface]

    # -- program binding ---------------------------------------------------------------

    def bind_program(self, program: SwitchProgram) -> None:
        self.program = program
        program.attach(self)

    # -- data path -------------------------------------------------------------------

    def receive(self, packet: Packet, interface: Interface) -> None:
        self.stats.rx_packets += 1
        port = self._port_of_interface[interface]
        self.sim.post(
            self.config.pipeline_latency_ns, self._run_pipeline, packet, port, 0
        )

    def receive_batch(self, packets: List[Packet], interface: Interface) -> None:
        # Hoists the port lookup and stats update out of the per-packet loop.
        self.stats.rx_packets += len(packets)
        port = self._port_of_interface[interface]
        post = self.sim.post
        latency = self.config.pipeline_latency_ns
        pipeline = self._run_pipeline
        for packet in packets:
            post(latency, pipeline, packet, port, 0)

    def inject(self, packet: Packet, port: Optional[int] = None) -> None:
        """Run a locally-generated packet through the pipeline (CPU port)."""
        self.sim.post(
            self.config.pipeline_latency_ns, self._run_pipeline, packet, port, 0
        )

    def _run_pipeline(
        self, packet: Packet, in_port: Optional[int], pass_count: int
    ) -> None:
        if self.program is None:
            raise RuntimeError(f"{self.name}: no program bound")
        self.stats.processed += 1
        ctx = PipelineContext(self, in_port)
        ctx.clone_to = lambda port: self._clone_to(ctx, packet, port)
        if pass_count == 0:
            self.program.on_ingress(ctx, packet)
        else:
            self.program.on_recirculate(ctx, packet)
        self._apply_verdict(ctx, packet, in_port, pass_count)

    def _clone_to(self, ctx: PipelineContext, packet: Packet, port: int) -> Packet:
        clone = packet.clone()
        ctx.emitted.append((clone, port))
        return clone

    def _apply_verdict(
        self,
        ctx: PipelineContext,
        packet: Packet,
        in_port: Optional[int],
        pass_count: int,
    ) -> None:
        for extra, port in ctx.emitted:
            self.transmit(extra, port)
        if ctx.recirculated:
            if pass_count + 1 > self.config.max_recirculations:
                self.stats.recirculation_overflow_drops += 1
                return
            self.stats.recirculations += 1
            self.sim.post(
                self.config.recirculation_latency_ns,
                self._run_pipeline,
                packet,
                in_port,
                pass_count + 1,
            )
            return
        if ctx.dropped:
            self.stats.dropped_by_program += 1
            return
        if ctx.flooded:
            for port in range(self.port_count):
                if port != in_port:
                    self.transmit(packet.clone() if port != self._last_flood_port(in_port) else packet, port)
            return
        if ctx.egress_port is not None:
            self.transmit(packet, ctx.egress_port)

    def _last_flood_port(self, in_port: Optional[int]) -> int:
        """The highest-numbered flood target, which gets the original packet."""
        for port in range(self.port_count - 1, -1, -1):
            if port != in_port:
                return port
        return -1

    def transmit(self, packet: Packet, port: int) -> bool:
        """Hand *packet* to the traffic manager / port serializer."""
        if not 0 <= port < self.port_count:
            raise ValueError(f"{self.name}: no such port {port}")
        self.stats.tx_packets += 1
        return self._ports[port].send(packet)

    def __repr__(self) -> str:
        return f"<ProgrammableSwitch {self.name} ports={self.port_count}>"
