"""Match-action tables: exact, LPM, and ternary.

These model the SRAM/TCAM tables of a programmable switch, including the
crucial property the paper is about: **bounded capacity**.  Inserting past
``capacity`` raises :class:`TableFullError`, which is what forces real
deployments onto CPU slow paths — and what the remote lookup-table
primitive eliminates.

A table maps a key to an :class:`ActionEntry` (an action name plus
parameters).  The pipeline program interprets the action; tables stay pure
data structures with hit/miss accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional


class TableFullError(Exception):
    """The table has no free SRAM/TCAM entries left."""


@dataclass
class ActionEntry:
    """An action name plus its parameters, as installed by the control plane."""

    action: str
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass
class TableStats:
    hits: int = 0
    misses: int = 0
    inserts: int = 0
    deletes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0


class ExactMatchTable:
    """An exact-match table with bounded capacity (SRAM-backed)."""

    def __init__(self, name: str, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"table capacity must be positive: {capacity}")
        self.name = name
        self.capacity = capacity
        self.default_action: Optional[ActionEntry] = None
        self.stats = TableStats()
        self._entries: Dict[Hashable, ActionEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def insert(self, key: Hashable, entry: ActionEntry) -> None:
        """Install *entry* under *key*; updating an existing key is free."""
        if key not in self._entries and self.is_full:
            raise TableFullError(
                f"table {self.name!r} full ({self.capacity} entries)"
            )
        self._entries[key] = entry
        self.stats.inserts += 1

    def delete(self, key: Hashable) -> bool:
        if key in self._entries:
            del self._entries[key]
            self.stats.deletes += 1
            return True
        return False

    def lookup(self, key: Hashable) -> Optional[ActionEntry]:
        """Match *key*: the entry on hit, else the default action (or None)."""
        entry = self._entries.get(key)
        if entry is not None:
            self.stats.hits += 1
            return entry
        self.stats.misses += 1
        return self.default_action

    def contains(self, key: Hashable) -> bool:
        return key in self._entries

    def evict_oldest(self) -> Optional[Hashable]:
        """Remove and return the oldest-inserted key (FIFO eviction)."""
        if not self._entries:
            return None
        key = next(iter(self._entries))
        del self._entries[key]
        self.stats.deletes += 1
        return key

    def clear(self) -> None:
        self._entries.clear()

    def __repr__(self) -> str:
        return f"<ExactMatchTable {self.name} {len(self)}/{self.capacity}>"


class LpmTable:
    """Longest-prefix-match table over integer keys (e.g. IPv4 addresses)."""

    def __init__(self, name: str, capacity: int, key_bits: int = 32) -> None:
        if capacity <= 0:
            raise ValueError(f"table capacity must be positive: {capacity}")
        self.name = name
        self.capacity = capacity
        self.key_bits = key_bits
        self.default_action: Optional[ActionEntry] = None
        self.stats = TableStats()
        # prefix length -> {masked key -> entry}; scanned longest-first.
        self._by_length: Dict[int, Dict[int, ActionEntry]] = {}
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def _mask(self, key: int, length: int) -> int:
        if length == 0:
            return 0
        shift = self.key_bits - length
        return (key >> shift) << shift

    def insert(self, prefix: int, length: int, entry: ActionEntry) -> None:
        if not 0 <= length <= self.key_bits:
            raise ValueError(f"prefix length out of range: {length}")
        bucket = self._by_length.setdefault(length, {})
        masked = self._mask(prefix, length)
        if masked not in bucket:
            if self._count >= self.capacity:
                raise TableFullError(
                    f"table {self.name!r} full ({self.capacity} entries)"
                )
            self._count += 1
        bucket[masked] = entry
        self.stats.inserts += 1

    def lookup(self, key: int) -> Optional[ActionEntry]:
        for length in sorted(self._by_length, reverse=True):
            entry = self._by_length[length].get(self._mask(key, length))
            if entry is not None:
                self.stats.hits += 1
                return entry
        self.stats.misses += 1
        return self.default_action

    def __repr__(self) -> str:
        return f"<LpmTable {self.name} {self._count}/{self.capacity}>"


@dataclass
class TernaryRule:
    """value/mask pair with a priority (lower number = higher priority)."""

    value: int
    mask: int
    priority: int
    entry: ActionEntry

    def matches(self, key: int) -> bool:
        return (key & self.mask) == (self.value & self.mask)


class TernaryTable:
    """A ternary (TCAM) table over integer keys with rule priorities."""

    def __init__(self, name: str, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"table capacity must be positive: {capacity}")
        self.name = name
        self.capacity = capacity
        self.default_action: Optional[ActionEntry] = None
        self.stats = TableStats()
        self._rules: List[TernaryRule] = []

    def __len__(self) -> int:
        return len(self._rules)

    def insert(
        self, value: int, mask: int, entry: ActionEntry, priority: int = 0
    ) -> None:
        if len(self._rules) >= self.capacity:
            raise TableFullError(
                f"table {self.name!r} full ({self.capacity} entries)"
            )
        self._rules.append(
            TernaryRule(value=value, mask=mask, priority=priority, entry=entry)
        )
        self._rules.sort(key=lambda r: r.priority)
        self.stats.inserts += 1

    def lookup(self, key: int) -> Optional[ActionEntry]:
        for rule in self._rules:
            if rule.matches(key):
                self.stats.hits += 1
                return rule.entry
        self.stats.misses += 1
        return self.default_action

    def __repr__(self) -> str:
        return f"<TernaryTable {self.name} {len(self)}/{self.capacity}>"
