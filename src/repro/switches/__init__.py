"""Programmable-switch model: tables, registers, hashing, TM, pipeline."""

from .hashing import FiveTuple, crc16, crc32, hash_fields
from .pipeline import PipelineContext, SwitchProgram
from .registers import RegisterArray
from .switch import ProgrammableSwitch, SwitchConfig, SwitchStats
from .tables import (
    ActionEntry,
    ExactMatchTable,
    LpmTable,
    TableFullError,
    TableStats,
    TernaryRule,
    TernaryTable,
)
from .traffic_manager import (
    HookVerdict,
    PortQueue,
    TrafficManager,
    TrafficManagerConfig,
)

__all__ = [
    "ActionEntry",
    "ExactMatchTable",
    "FiveTuple",
    "HookVerdict",
    "LpmTable",
    "PipelineContext",
    "PortQueue",
    "ProgrammableSwitch",
    "RegisterArray",
    "SwitchConfig",
    "SwitchProgram",
    "SwitchStats",
    "TableFullError",
    "TableStats",
    "TernaryRule",
    "TernaryTable",
    "TrafficManager",
    "TrafficManagerConfig",
    "crc16",
    "crc32",
    "hash_fields",
]
