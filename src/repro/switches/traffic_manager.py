"""The traffic manager: shared packet buffer and per-port egress queues.

This is where the paper's problem lives.  Data-center switch ASICs carry
O(10 MB) of on-chip packet buffer shared across all port queues (§2.1 uses
12 MB); when an incast fills it, the drop-tail TM discards packets.

The TM exposes the two hooks the remote packet-buffer primitive needs:

* an **egress hook** consulted before every enqueue — the primitive can
  *divert* the packet to remote memory instead of queueing it locally;
* **dequeue listeners** fired as the port serializer drains — the
  primitive watches for the local queue to empty so it can start READing
  packets back (§4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..net.headers import Ipv4Header
from ..net.packet import Packet
from ..sim.units import mib


class HookVerdict(enum.Enum):
    """What an egress hook decided about a packet."""

    PASS = "pass"          # proceed with normal enqueue (may still drop)
    CONSUMED = "consumed"  # the hook took ownership (e.g. diverted to remote)


EgressHook = Callable[[int, Packet, "PortQueue"], HookVerdict]
DequeueListener = Callable[[int, Packet, "PortQueue"], None]


@dataclass
class TrafficManagerConfig:
    """Buffer geometry and scheduling of the modelled ASIC."""

    #: Shared packet-buffer pool (the paper's example ToR has 12 MB).
    buffer_bytes: int = mib(12)
    #: Optional static per-queue cap within the shared pool.
    per_queue_limit_bytes: Optional[int] = None
    #: §7 option: serve RDMA packets at strict priority and reserve buffer
    #: headroom for them "so that they are less likely to be dropped".
    rdma_priority: bool = False
    #: Buffer bytes only RDMA packets may use (with rdma_priority).
    rdma_reserved_bytes: int = 0
    #: §7 option: token-bucket policer on RDMA traffic per port, "a
    #: bandwidth cap to prevent RDMA packets taking too much bandwidth".
    #: None disables the cap.
    rdma_rate_cap_bps: Optional[float] = None
    #: Token-bucket burst allowance for the RDMA cap.
    rdma_cap_burst_bytes: int = 32 * 1024
    #: ECN marking threshold (DCTCP-style step marking): ECT packets
    #: enqueued while the port queue is at or above this depth get CE.
    #: §2.1 relies on this for *persistent* congestion ("end-to-end
    #: congestion control based on ECN ... should have slowed traffic").
    #: None disables marking.
    ecn_threshold_bytes: Optional[int] = None
    #: Which packets ride the strict-priority class when rdma_priority is
    #: on.  Defaults to "any RoCE packet"; override to something finer —
    #: e.g. READ requests only, so the packet buffer's load path never
    #: queues behind megabytes of its own store traffic.
    priority_classifier: Optional[Callable[[Packet], bool]] = None


def _is_rdma(packet: Packet) -> bool:
    """Classify RDMA traffic the way the pipeline would (BTH present)."""
    # Local import: net must not depend on rdma at module load.
    from ..rdma.headers import BthHeader

    return packet.find(BthHeader) is not None


class PortQueue:
    """One port's egress FIFO, drawing from the TM's shared byte pool.

    Duck-type compatible with :class:`repro.net.queues.TxQueue` so an
    :class:`~repro.net.node.Interface` can serve directly from it.
    """

    def __init__(self, tm: "TrafficManager", port: int) -> None:
        self.tm = tm
        self.port = port
        self._queue: List[Packet] = []
        self._head = 0
        # Strict-priority class for RDMA packets (rdma_priority mode).
        self._rdma_queue: List[Packet] = []
        self._rdma_head = 0
        self._depth_bytes = 0
        self.enqueued_packets = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self.rdma_policer_drops = 0
        self.ecn_marked = 0
        self.peak_depth_bytes = 0
        # Token bucket for the RDMA rate cap.
        self._cap_tokens = float(tm.config.rdma_cap_burst_bytes)
        self._cap_refilled_at = 0.0

    # -- TxQueue protocol -------------------------------------------------------

    def admits(self, packet: Packet, is_rdma: bool = False) -> bool:
        size = packet.buffer_len
        pool = self.tm.config.buffer_bytes
        if self.tm.config.rdma_priority and not is_rdma:
            # Reserved headroom is off limits to non-RDMA traffic.
            pool -= self.tm.config.rdma_reserved_bytes
        if self.tm.used_bytes + size > pool:
            return False
        limit = self.tm.config.per_queue_limit_bytes
        if limit is not None and self._depth_bytes + size > limit:
            return False
        return True

    def _police_rdma(self, packet: Packet) -> bool:
        """Token-bucket policer for the §7 RDMA bandwidth cap."""
        cap = self.tm.config.rdma_rate_cap_bps
        if cap is None:
            return True
        now = self.tm.now_ns()
        elapsed = max(0.0, now - self._cap_refilled_at)
        self._cap_refilled_at = now
        self._cap_tokens = min(
            self.tm.config.rdma_cap_burst_bytes,
            self._cap_tokens + elapsed * cap / 8e9,
        )
        size = packet.buffer_len
        if self._cap_tokens < size:
            return False
        self._cap_tokens -= size
        return True

    def offer(self, packet: Packet) -> bool:
        """TM admission: egress hook first, then shared-pool drop-tail."""
        verdict = self.tm.consult_hook(self.port, packet, self)
        if verdict is HookVerdict.CONSUMED:
            return True  # the hook owns the packet now; not a drop
        if not self.tm.classifies_rdma:
            is_rdma = False
        elif self.tm.config.priority_classifier is not None:
            is_rdma = self.tm.config.priority_classifier(packet)
        else:
            is_rdma = _is_rdma(packet)
        if is_rdma and not self._police_rdma(packet):
            self.rdma_policer_drops += 1
            self.tm.total_dropped_packets += 1
            self.tm.total_dropped_bytes += packet.buffer_len
            return False
        if not self.admits(packet, is_rdma=is_rdma):
            self.dropped_packets += 1
            self.dropped_bytes += packet.buffer_len
            self.tm.total_dropped_packets += 1
            self.tm.total_dropped_bytes += packet.buffer_len
            return False
        self._maybe_mark_ecn(packet)
        self.enqueue_direct(packet, is_rdma=is_rdma)
        return True

    def _maybe_mark_ecn(self, packet: Packet) -> None:
        """DCTCP-style step marking: CE when the queue is hot."""
        threshold = self.tm.config.ecn_threshold_bytes
        if threshold is None or self._depth_bytes < threshold:
            return
        ip = packet.find(Ipv4Header)
        if ip is not None and ip.ecn in (1, 2):  # ECT(1) / ECT(0)
            ip.ecn = 3  # CE
            self.ecn_marked += 1

    def enqueue_direct(self, packet: Packet, is_rdma: bool = False) -> None:
        """Enqueue bypassing the egress hook (used by the hook itself when
        re-injecting packets loaded back from remote memory)."""
        size = packet.buffer_len
        if is_rdma and self.tm.config.rdma_priority:
            self._rdma_queue.append(packet)
        else:
            self._queue.append(packet)
        self._depth_bytes += size
        self.tm.used_bytes += size
        self.tm.peak_used_bytes = max(self.tm.peak_used_bytes, self.tm.used_bytes)
        self.peak_depth_bytes = max(self.peak_depth_bytes, self._depth_bytes)
        self.enqueued_packets += 1

    def _pop(self, queue: List[Packet], head: int):
        packet = queue[head]
        head += 1
        # Compact lazily so poll stays O(1) amortised.
        if head > 64 and head * 2 >= len(queue):
            del queue[:head]
            head = 0
        return packet, head

    def poll(self) -> Optional[Packet]:
        if self._rdma_head < len(self._rdma_queue):
            packet, self._rdma_head = self._pop(self._rdma_queue, self._rdma_head)
        elif self._head < len(self._queue):
            packet, self._head = self._pop(self._queue, self._head)
        else:
            return None
        self._depth_bytes -= packet.buffer_len
        self.tm.used_bytes -= packet.buffer_len
        self.tm.notify_dequeue(self.port, packet, self)
        return packet

    def peek(self) -> Optional[Packet]:
        if self._rdma_head < len(self._rdma_queue):
            return self._rdma_queue[self._rdma_head]
        if self._head < len(self._queue):
            return self._queue[self._head]
        return None

    # -- introspection --------------------------------------------------------------

    @property
    def depth_bytes(self) -> int:
        return self._depth_bytes

    def __len__(self) -> int:
        return (
            len(self._queue) - self._head
            + len(self._rdma_queue) - self._rdma_head
        )

    def __bool__(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"<PortQueue port={self.port} {len(self)}p/{self._depth_bytes}B>"


class TrafficManager:
    """Shared-buffer manager across all port queues of one switch."""

    def __init__(self, config: Optional[TrafficManagerConfig] = None) -> None:
        self.config = config if config is not None else TrafficManagerConfig()
        self.used_bytes = 0
        self.peak_used_bytes = 0
        self.total_dropped_packets = 0
        self.total_dropped_bytes = 0
        self.queues: Dict[int, PortQueue] = {}
        self.egress_hook: Optional[EgressHook] = None
        self.dequeue_listeners: List[DequeueListener] = []
        #: Clock source; the owning switch installs its simulator clock
        #: (needed only by the RDMA rate-cap policer).
        self.clock: Callable[[], float] = lambda: 0.0

    def now_ns(self) -> float:
        return self.clock()

    @property
    def classifies_rdma(self) -> bool:
        """Does any configured feature need per-packet RDMA classification?"""
        return (
            self.config.rdma_priority
            or self.config.rdma_rate_cap_bps is not None
        )

    def queue_for(self, port: int) -> PortQueue:
        if port not in self.queues:
            self.queues[port] = PortQueue(self, port)
        return self.queues[port]

    def consult_hook(
        self, port: int, packet: Packet, queue: PortQueue
    ) -> HookVerdict:
        if self.egress_hook is None:
            return HookVerdict.PASS
        return self.egress_hook(port, packet, queue)

    def notify_dequeue(self, port: int, packet: Packet, queue: PortQueue) -> None:
        for listener in self.dequeue_listeners:
            listener(port, packet, queue)

    @property
    def free_bytes(self) -> int:
        return self.config.buffer_bytes - self.used_bytes

    def __repr__(self) -> str:
        return (
            f"<TrafficManager {self.used_bytes}/{self.config.buffer_bytes}B "
            f"drops={self.total_dropped_packets}>"
        )
