"""Register arrays: the stateful memory of a switch pipeline.

Data-plane programs (and the paper's primitives) keep per-connection state
— next PSN, ring-buffer pointers, outstanding-op counts, locally
accumulated counter values — in register arrays exactly as a P4 program
would.  Capacity is bounded and width-masked, matching hardware stateful
ALUs.
"""

from __future__ import annotations

from typing import Callable, List


class RegisterArray:
    """A fixed-size array of unsigned registers of ``width_bits`` each."""

    def __init__(self, name: str, size: int, width_bits: int = 64) -> None:
        if size <= 0:
            raise ValueError(f"register array size must be positive: {size}")
        if width_bits <= 0 or width_bits > 64:
            raise ValueError(f"register width must be 1..64 bits: {width_bits}")
        self.name = name
        self.size = size
        self.width_bits = width_bits
        self._mask = (1 << width_bits) - 1
        self._values: List[int] = [0] * size
        self.reads = 0
        self.writes = 0

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(
                f"register {self.name!r} index {index} out of range "
                f"(size {self.size})"
            )

    def read(self, index: int) -> int:
        self._check_index(index)
        self.reads += 1
        return self._values[index]

    def write(self, index: int, value: int) -> None:
        self._check_index(index)
        self.writes += 1
        self._values[index] = value & self._mask

    def add(self, index: int, delta: int) -> int:
        """Read-modify-write add (one stateful-ALU op); returns new value."""
        self._check_index(index)
        self.reads += 1
        self.writes += 1
        new = (self._values[index] + delta) & self._mask
        self._values[index] = new
        return new

    def update(self, index: int, fn: Callable[[int], int]) -> int:
        """Apply ``fn`` read-modify-write; returns the new value."""
        self._check_index(index)
        self.reads += 1
        self.writes += 1
        new = fn(self._values[index]) & self._mask
        self._values[index] = new
        return new

    def fill(self, value: int) -> None:
        self._values = [value & self._mask] * self.size

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return f"<RegisterArray {self.name} {self.size}x{self.width_bits}b>"
