"""Standard experiment topology: hosts + ToR switch + memory server.

This mirrors the paper's testbed (§5): a programmable ToR switch with
end-host servers and one remote-memory server, all directly attached over
40 GbE.  Every experiment harness builds on :func:`build_testbed`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .core.channel import RdmaChannelController
from .hosts.server import Host, MemoryServer
from .net.link import Link, connect
from .rdma.rnic import RnicConfig
from .sim.rng import SeedSequence
from .sim.simulator import Simulator
from .sim.units import gbps, gib
from .switches.switch import ProgrammableSwitch, SwitchConfig
from .switches.traffic_manager import TrafficManagerConfig

#: Link rate of the paper's testbed (40 Gbps Mellanox CX-3 Pro).
DEFAULT_LINK_RATE = gbps(40)
#: One-way propagation + PHY/MAC latency per in-rack DAC link.
DEFAULT_PROPAGATION_NS = 100.0


@dataclass
class Testbed:
    """A built topology plus handles to all its parts."""

    sim: Simulator
    switch: ProgrammableSwitch
    hosts: List[Host]
    host_ports: List[int]
    host_links: List[Link]
    memory_servers: List[MemoryServer]
    server_ports: List[int]
    server_links: List[Link]
    controller: RdmaChannelController
    seeds: SeedSequence = field(default_factory=lambda: SeedSequence(0))

    def host_port(self, index: int) -> int:
        return self.host_ports[index]

    # Singular accessors for the common one-memory-server topology.

    @property
    def memory_server(self) -> Optional[MemoryServer]:
        return self.memory_servers[0] if self.memory_servers else None

    @property
    def server_port(self) -> Optional[int]:
        return self.server_ports[0] if self.server_ports else None

    @property
    def server_link(self) -> Optional[Link]:
        return self.server_links[0] if self.server_links else None

    def open_channels(self, size_bytes: int) -> list:
        """Open one channel of *size_bytes* to every memory server."""
        return [
            self.controller.open_channel(server, port, size_bytes)
            for server, port in zip(self.memory_servers, self.server_ports)
        ]


def build_testbed(
    n_hosts: int = 2,
    with_memory_server: bool = True,
    n_memory_servers: int = 1,
    link_rate_bps: float = DEFAULT_LINK_RATE,
    propagation_ns: float = DEFAULT_PROPAGATION_NS,
    switch_config: Optional[SwitchConfig] = None,
    tm_config: Optional[TrafficManagerConfig] = None,
    rnic_config: Optional[RnicConfig] = None,
    server_dram_bytes: int = gib(64),
    seed: int = 0,
) -> Testbed:
    """Build the §5 star topology.

    ``n_hosts`` end hosts on ports 0..n-1; the memory server (when present)
    on the last port.  All switch ports get IP identities so any of them
    can source RoCE packets.
    """
    sim = Simulator()
    seeds = SeedSequence(seed)
    switch = ProgrammableSwitch(
        sim, "tor", config=switch_config, tm_config=tm_config
    )
    hosts: List[Host] = []
    host_ports: List[int] = []
    host_links: List[Link] = []
    for i in range(n_hosts):
        host = Host(
            sim,
            f"h{i}",
            mac=f"02:00:00:00:00:{i + 1:02x}",
            ip=f"10.0.0.{i + 1}",
        )
        port = switch.add_port(
            mac=f"02:00:00:00:10:{i + 1:02x}", ip=f"10.0.1.{i + 1}"
        )
        link = connect(
            sim,
            host.eth,
            switch.port_interface(port),
            link_rate_bps,
            propagation_ns=propagation_ns,
        )
        hosts.append(host)
        host_ports.append(port)
        host_links.append(link)

    memory_servers: List[MemoryServer] = []
    server_ports: List[int] = []
    server_links: List[Link] = []
    if with_memory_server:
        for i in range(n_memory_servers):
            server = MemoryServer(
                sim,
                f"memserver{i}" if n_memory_servers > 1 else "memserver",
                mac=f"02:00:00:00:20:{i + 1:02x}",
                ip=f"10.0.2.{i + 1}",
                dram_bytes=server_dram_bytes,
                rnic_config=rnic_config,
            )
            port = switch.add_port(
                mac=f"02:00:00:00:30:{i + 1:02x}", ip=f"10.0.3.{i + 1}"
            )
            link = connect(
                sim,
                server.eth,
                switch.port_interface(port),
                link_rate_bps,
                propagation_ns=propagation_ns,
            )
            memory_servers.append(server)
            server_ports.append(port)
            server_links.append(link)

    controller = RdmaChannelController(switch)
    return Testbed(
        sim=sim,
        switch=switch,
        hosts=hosts,
        host_ports=host_ports,
        host_links=host_links,
        memory_servers=memory_servers,
        server_ports=server_ports,
        server_links=server_links,
        controller=controller,
        seeds=seeds,
    )
