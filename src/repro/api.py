"""The supported public surface of the library, in one import.

Everything a program, example, or downstream experiment needs rides this
facade::

    from repro.api import (
        build_testbed, LookupTableConfig, RemoteLookupTable, Observability,
    )

    tb = build_testbed(n_hosts=2)
    channel = tb.controller.open_channel(tb.memory_server, tb.server_port, ...)
    table = RemoteLookupTable(tb.switch, channel, LookupTableConfig(...))
    tb.sim.run()
    print(tb.sim.obs.registry.snapshot("lookup"))

Deep imports (``repro.core.lookup_table`` etc.) keep working, but only
the names exported here are treated as stable API; internals may move
between modules without notice (the testbed builder already did — see
:mod:`repro.experiments.topology`).

This module deliberately imports no experiment harness, so
``import repro.api`` stays cheap and cycle-free (harnesses themselves
import it).
"""

from __future__ import annotations

# -- simulation kernel and testbed -----------------------------------------
from .sim.batch import BatchSimulator
from .sim.simulator import (
    KERNELS,
    Simulator,
    default_kernel,
    kernel_mode,
    set_default_kernel,
)
from .sim.units import (
    gbps,
    gib,
    kib,
    mib,
    msec,
    nsec,
    to_msec,
    to_usec,
    usec,
)
from .testbed import (
    DEFAULT_LINK_RATE,
    DEFAULT_PROPAGATION_NS,
    Testbed,
    build_testbed,
)

# -- switch and control plane ----------------------------------------------
from .switches.switch import ProgrammableSwitch, SwitchConfig
from .switches.traffic_manager import TrafficManagerConfig
from .core.channel import (
    ChannelError,
    RdmaChannelController,
    RemoteMemoryChannel,
)

# -- the three primitives (§4) ---------------------------------------------
from .core.lookup_table import (
    ACTION_DROP,
    ACTION_NOP,
    ACTION_SET_DSCP,
    ACTION_SET_DST_IP,
    ACTION_SET_EGRESS,
    LookupTableConfig,
    LookupTableStats,
    RemoteAction,
    RemoteLookupTable,
)
from .switches.hashing import FiveTuple
from .core.packet_buffer import (
    ENTRY_SEQ_BYTES,
    PacketBufferConfig,
    PacketBufferStats,
    RemotePacketBuffer,
)
from .core.state_store import (
    RemoteStateStore,
    StateStoreConfig,
    StateStoreStats,
)
from .core.rocegen import RoceRequestGenerator

# -- cuckoo remote layout (DESIGN.md §12) ------------------------------------
from .cuckoo import (
    ChoiceFilter,
    CuckooConfig,
    CuckooDataPlane,
    CuckooDirectory,
    CuckooFullError,
    Move,
    SlotRef,
)

# -- unified policy surface (DESIGN.md §12/§13) -------------------------------
from .policies import (
    CACHE_POLICIES,
    PLACEMENT_POLICIES,
    POLICY_KINDS,
    AccessFrequencyPlacement,
    BlockStat,
    BreakerPolicy,
    CachePolicy,
    FifoCachePolicy,
    LfuCachePolicy,
    LruCachePolicy,
    PinningCachePolicy,
    PlacementPolicy,
    PlacementView,
    Policy,
    StaticPinPlacement,
    TierMove,
    WatermarkPlacement,
    make_cache_policy,
    make_placement_policy,
    make_policy,
)

# -- tiered remote memory (DESIGN.md §13) -------------------------------------
from .rdma.memory import TIER_DRAM, TIER_FAST, TIERS
from .rdma.rnic import TierProfile
from .tiering import TieredMemoryPool, TieredRegionGeometry

# -- million-flow workloads (DESIGN.md §12) ----------------------------------
from .workloads.zipf import OpenLoopZipfTraffic, ZipfGenerator

# -- switch programs --------------------------------------------------------
from .apps.programs import (
    CountingProgram,
    RemoteBufferProgram,
    RemoteLookupProgram,
    StaticL2Program,
)
from .switches.pipeline import PipelineContext, SwitchProgram

# -- L4 load balancer (DESIGN.md §15) ----------------------------------------
from .apps.l4lb import (
    BACKEND_ACTIVE,
    BACKEND_DEAD,
    BACKEND_DRAINING,
    BACKEND_RETIRED,
    Backend,
    L4LbController,
    L4LbProgram,
    L4LbStats,
    MigrationRecord,
)

# -- packets ----------------------------------------------------------------
from .net.packet import Packet, PacketPool

# -- servers and NICs -------------------------------------------------------
from .hosts.server import Host, MemoryServer
from .rdma.rnic import Rnic, RnicConfig
from .rdma.packets import (
    integrity_protected,
    set_integrity_default,
    verify_icrc,
)

# -- fault injection (DESIGN.md §10) ----------------------------------------
from .faults import (
    AtomicEngineStall,
    Blackout,
    Corrupt,
    Duplicate,
    FaultPlan,
    GilbertElliottLoss,
    IidLoss,
    Jitter,
    LinkFault,
    LinkFaultInjector,
    Reorder,
    RnicBlackout,
    RnicDropBurst,
    RnicFault,
    RnicFaultInjector,
)

# -- resilience (DESIGN.md §11) ---------------------------------------------
from .resilience import (
    CircuitBreaker,
    CircuitBreakerConfig,
    SelfHealingChannel,
)

# -- link-local loss protection (DESIGN.md §14) ------------------------------
from .linkguard import (
    ETHERTYPE_LINKGUARD,
    PROTECTION_LEVELS,
    GuardShimHeader,
    LinkGuard,
    LinkGuardConfig,
    guard_checksum,
)

# -- cluster scale-out ------------------------------------------------------
from .cluster.pool import MemoryPool, PoolMember
from .cluster.health import HealthMonitor
from .cluster.sharded_lookup import ShardedLookupTable
from .cluster.replicated_store import ReplicatedStateStore

# -- observability ----------------------------------------------------------
from .obs import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    MetricScope,
    Observability,
    TraceEvent,
    WireTrace,
)

__all__ = [
    # simulation + testbed
    "Simulator",
    "BatchSimulator",
    "KERNELS",
    "default_kernel",
    "kernel_mode",
    "set_default_kernel",
    "Testbed",
    "build_testbed",
    "DEFAULT_LINK_RATE",
    "DEFAULT_PROPAGATION_NS",
    "gbps",
    "gib",
    "kib",
    "mib",
    "msec",
    "nsec",
    "to_msec",
    "to_usec",
    "usec",
    # switch + control plane
    "ProgrammableSwitch",
    "SwitchConfig",
    "TrafficManagerConfig",
    "ChannelError",
    "RdmaChannelController",
    "RemoteMemoryChannel",
    # primitives
    "ACTION_DROP",
    "ACTION_NOP",
    "ACTION_SET_DSCP",
    "ACTION_SET_DST_IP",
    "ACTION_SET_EGRESS",
    "FiveTuple",
    "LookupTableConfig",
    "LookupTableStats",
    "RemoteAction",
    "RemoteLookupTable",
    "ENTRY_SEQ_BYTES",
    "PacketBufferConfig",
    "PacketBufferStats",
    "RemotePacketBuffer",
    "StateStoreConfig",
    "StateStoreStats",
    "RemoteStateStore",
    "RoceRequestGenerator",
    # cuckoo remote layout
    "ChoiceFilter",
    "CuckooConfig",
    "CuckooDataPlane",
    "CuckooDirectory",
    "CuckooFullError",
    "Move",
    "SlotRef",
    # unified policy surface
    "POLICY_KINDS",
    "Policy",
    "make_policy",
    "CACHE_POLICIES",
    "CachePolicy",
    "FifoCachePolicy",
    "LfuCachePolicy",
    "LruCachePolicy",
    "PinningCachePolicy",
    "make_cache_policy",
    "PLACEMENT_POLICIES",
    "PlacementPolicy",
    "StaticPinPlacement",
    "AccessFrequencyPlacement",
    "WatermarkPlacement",
    "make_placement_policy",
    "BlockStat",
    "PlacementView",
    "TierMove",
    "BreakerPolicy",
    # tiered remote memory
    "TIER_DRAM",
    "TIER_FAST",
    "TIERS",
    "TierProfile",
    "TieredMemoryPool",
    "TieredRegionGeometry",
    # million-flow workloads
    "OpenLoopZipfTraffic",
    "ZipfGenerator",
    # switch programs
    "CountingProgram",
    "PipelineContext",
    "RemoteBufferProgram",
    "RemoteLookupProgram",
    "StaticL2Program",
    "SwitchProgram",
    # L4 load balancer
    "BACKEND_ACTIVE",
    "BACKEND_DEAD",
    "BACKEND_DRAINING",
    "BACKEND_RETIRED",
    "Backend",
    "L4LbController",
    "L4LbProgram",
    "L4LbStats",
    "MigrationRecord",
    # packets
    "Packet",
    "PacketPool",
    # hosts + NICs
    "Host",
    "MemoryServer",
    "Rnic",
    "RnicConfig",
    "integrity_protected",
    "set_integrity_default",
    "verify_icrc",
    # fault injection
    "AtomicEngineStall",
    "Blackout",
    "Corrupt",
    "Duplicate",
    "FaultPlan",
    "GilbertElliottLoss",
    "IidLoss",
    "Jitter",
    "LinkFault",
    "LinkFaultInjector",
    "Reorder",
    "RnicBlackout",
    "RnicDropBurst",
    "RnicFault",
    "RnicFaultInjector",
    # resilience
    "CircuitBreaker",
    "CircuitBreakerConfig",
    "SelfHealingChannel",
    # link-local loss protection
    "ETHERTYPE_LINKGUARD",
    "PROTECTION_LEVELS",
    "GuardShimHeader",
    "LinkGuard",
    "LinkGuardConfig",
    "guard_checksum",
    # cluster
    "MemoryPool",
    "PoolMember",
    "HealthMonitor",
    "ShardedLookupTable",
    "ReplicatedStateStore",
    # observability
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "MetricScope",
    "Observability",
    "TraceEvent",
    "WireTrace",
]
