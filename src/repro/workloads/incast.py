"""Synchronized N-to-1 incast bursts (§2.1's motivating workload).

Models the classic last-hop incast: N senders simultaneously blast a fixed
number of bytes at line rate toward a single receiver behind one ToR port.
With eight 40 Gbps senders and 50 MB of aggregate data, a 12 MB switch
buffer fills in ~0.34 ms — the arithmetic the paper opens with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..hosts.server import Host
from ..sim.simulator import Simulator
from .perftest import PacketSink, RawEthernetBw

INCAST_PORT = 40_000


@dataclass
class IncastReport:
    """Aggregate outcome of one incast experiment."""

    senders: int
    packets_sent: int
    packets_received: int
    bytes_sent: int
    bytes_received: int
    out_of_order: int
    completion_ns: Optional[float]

    @property
    def packets_lost(self) -> int:
        return self.packets_sent - self.packets_received

    @property
    def loss_rate(self) -> float:
        if self.packets_sent == 0:
            return 0.0
        return self.packets_lost / self.packets_sent


class IncastWorkload:
    """N synchronized senders, one receiver, fixed bytes per sender."""

    def __init__(
        self,
        sim: Simulator,
        senders: List[Host],
        receiver: Host,
        bytes_per_sender: int,
        packet_size: int = 1500,
        rate_bps: float = 40e9,
    ) -> None:
        if not senders:
            raise ValueError("need at least one sender")
        self.sim = sim
        self.senders = senders
        self.receiver = receiver
        self.packet_size = packet_size
        packets_each = max(1, bytes_per_sender // packet_size)
        self.sink = PacketSink(receiver, dst_port=INCAST_PORT)
        self.generators = [
            RawEthernetBw(
                sim,
                sender,
                receiver,
                packet_size=packet_size,
                rate_bps=rate_bps,
                count=packets_each,
                src_port=INCAST_PORT + 1 + i,
                dst_port=INCAST_PORT,
            )
            for i, sender in enumerate(senders)
        ]

    def start(self, at_ns: float = 0.0) -> None:
        for generator in self.generators:
            generator.start(at_ns)

    def report(self) -> IncastReport:
        packets_sent = sum(g.report.packets_sent for g in self.generators)
        bytes_sent = sum(g.report.bytes_sent for g in self.generators)
        return IncastReport(
            senders=len(self.generators),
            packets_sent=packets_sent,
            packets_received=self.sink.packets,
            bytes_sent=bytes_sent,
            bytes_received=self.sink.bytes,
            out_of_order=self.sink.out_of_order,
            completion_ns=self.sink.last_arrival_ns if self.sink.packets else None,
        )
