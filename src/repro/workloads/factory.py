"""Packet factories for workload generators.

"Packet size" throughout the library (and in the paper's x-axes) means the
L2 frame size excluding FCS: Ethernet header + IP + UDP + payload.  The
smallest legal size is therefore 42 bytes of headers plus payload, and the
64 B point of Fig. 3 corresponds to a 22-byte payload.
"""

from __future__ import annotations

from typing import Optional

from ..hosts.server import Host
from ..net.headers import EthernetHeader, Ipv4Header, UdpHeader
from ..net.packet import Packet

#: Ethernet + IPv4 + UDP header bytes.
UDP_HEADER_BYTES = EthernetHeader.LENGTH + Ipv4Header.LENGTH + UdpHeader.LENGTH


def udp_between(
    src: Host,
    dst: Host,
    packet_size: int = 1500,
    src_port: int = 10_000,
    dst_port: int = 20_000,
    payload: Optional[bytes] = None,
    dscp: int = 0,
) -> Packet:
    """Build a UDP packet from *src* to *dst* of total frame size
    ``packet_size`` (headers included, FCS excluded)."""
    if payload is None:
        if packet_size < UDP_HEADER_BYTES:
            raise ValueError(
                f"packet size {packet_size} below header floor "
                f"{UDP_HEADER_BYTES}"
            )
        payload = b"\x00" * (packet_size - UDP_HEADER_BYTES)
    packet = Packet(
        headers=[
            EthernetHeader(dst=dst.eth.mac, src=src.eth.mac),
            Ipv4Header(src=src.eth.ip, dst=dst.eth.ip, dscp=dscp),
            UdpHeader(src_port=src_port, dst_port=dst_port),
        ],
        payload=payload,
    )
    packet.fixup_lengths()
    return packet
