"""Flow-level workloads: Zipf-popular flows over many endpoints.

The bare-metal lookup-table (§2.2) and telemetry (§2.3) scenarios need
traffic spread over far more flows than switch SRAM can hold, with the
skewed popularity real data centers show.  :class:`ZipfFlowWorkload`
generates a packet stream over F distinct 5-tuples whose popularity
follows Zipf(alpha).
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import Dict, List

from ..hosts.server import Host
from ..net.packet import Packet
from ..sim.simulator import Simulator
from ..sim.units import SEC
from .factory import udp_between


class ZipfSampler:
    """Sample flow ranks 0..n-1 with probability ∝ 1/(rank+1)^alpha."""

    def __init__(self, n: int, alpha: float, rng: random.Random) -> None:
        if n <= 0:
            raise ValueError(f"need at least one item, got {n}")
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.n = n
        self.alpha = alpha
        self._rng = rng
        weights = [1.0 / (rank + 1) ** alpha for rank in range(n)]
        total = 0.0
        self._cdf: List[float] = []
        for weight in weights:
            total += weight
            self._cdf.append(total)
        self._total = total

    def sample(self) -> int:
        point = self._rng.random() * self._total
        return bisect.bisect_left(self._cdf, point)


@dataclass
class FlowKey:
    """Identifies one generated flow (maps to UDP port pair)."""

    rank: int
    src_port: int
    dst_port: int


class ZipfFlowWorkload:
    """Paced packet stream over Zipf-popular flows between two hosts.

    Flows are distinguished by UDP port pairs, which is enough to make
    their 5-tuples (and hence remote table/counter indices) distinct.
    """

    BASE_PORT = 1024

    def __init__(
        self,
        sim: Simulator,
        src: Host,
        dst: Host,
        flows: int,
        alpha: float = 1.0,
        packet_size: int = 256,
        rate_bps: float = 10e9,
        count: int = 10_000,
        seed: int = 0,
    ) -> None:
        self.sim = sim
        self.src = src
        self.dst = dst
        self.flows = flows
        self.packet_size = packet_size
        self.count = count
        self._rng = random.Random(seed)
        self._sampler = ZipfSampler(flows, alpha, self._rng)
        self._sent = 0
        self.sent_by_rank: Dict[int, int] = {}
        self.packets_sent = 0
        template = udp_between(src, dst, packet_size)
        self._interval_ns = template.wire_len * 8 * SEC / rate_bps
        self.on_done = None

    def flow_key(self, rank: int) -> FlowKey:
        """Deterministic flow → port-pair mapping (16k ranks per dst port)."""
        return FlowKey(
            rank=rank,
            src_port=self.BASE_PORT + rank % 60_000,
            dst_port=self.BASE_PORT + rank // 60_000,
        )

    def packet_for(self, rank: int) -> Packet:
        key = self.flow_key(rank)
        packet = udp_between(
            self.src,
            self.dst,
            self.packet_size,
            src_port=key.src_port,
            dst_port=key.dst_port,
        )
        packet.meta["flow_rank"] = rank
        packet.meta["sent_at"] = self.sim.now
        return packet

    def start(self, at_ns: float = 0.0) -> None:
        self.sim.schedule_at(max(at_ns, self.sim.now), self._tick)

    def _tick(self) -> None:
        if self._sent >= self.count:
            if self.on_done is not None:
                self.on_done()
            return
        rank = self._sampler.sample()
        self.src.send(self.packet_for(rank))
        self.sent_by_rank[rank] = self.sent_by_rank.get(rank, 0) + 1
        self.packets_sent += 1
        self._sent += 1
        self.sim.schedule(self._interval_ns, self._tick)

    def distinct_flows_sent(self) -> int:
        return len(self.sent_by_rank)

    def heavy_hitters(self, threshold: int) -> Dict[int, int]:
        """Ground-truth flows with at least *threshold* packets."""
        return {
            rank: count
            for rank, count in self.sent_by_rank.items()
            if count >= threshold
        }
