"""``NPtcp`` (netpipe) analog: ping-pong end-to-end latency measurement.

The paper measures Fig. 3a's end-to-end latency with NPtcp across packet
sizes 64 B – 1 KB.  :class:`PingPong` does the equivalent: host A sends a
probe, host B's handler immediately echoes it back, and the recorded RTT/2
is the one-way end-to-end latency.  Medians over many probes are reported,
matching the figure.
"""

from __future__ import annotations

import statistics
from typing import List, Optional

from ..hosts.server import Host
from ..net.headers import EthernetHeader, Ipv4Header, UdpHeader
from ..net.node import Interface
from ..net.packet import Packet
from ..sim.simulator import Simulator
from .factory import udp_between

PROBE_PORT = 33_333


class Echoer:
    """Reflects probes back to their sender (the netpipe server side)."""

    def __init__(self, host: Host, port: int = PROBE_PORT) -> None:
        self.host = host
        self.port = port
        self.echoed = 0
        host.packet_handlers.append(self._handle)

    def _handle(self, packet: Packet, interface: Interface) -> None:
        udp = packet.find(UdpHeader)
        if udp is None or udp.dst_port != self.port:
            return
        reply = packet.clone()
        eth = reply.require(EthernetHeader)
        ip = reply.require(Ipv4Header)
        rudp = reply.require(UdpHeader)
        eth.dst, eth.src = eth.src, self.host.eth.mac
        ip.dst, ip.src = ip.src, self.host.eth.ip
        rudp.dst_port, rudp.src_port = rudp.src_port, self.port
        self.echoed += 1
        self.host.send(reply)


class PingPong:
    """Serial ping-pong probe train between two hosts."""

    def __init__(
        self,
        sim: Simulator,
        client: Host,
        server: Host,
        packet_size: int = 64,
        probes: int = 100,
        port: int = PROBE_PORT,
    ) -> None:
        self.sim = sim
        self.client = client
        self.server = server
        self.packet_size = packet_size
        self.probes = probes
        self.port = port
        self.rtts_ns: List[float] = []
        self._echoer = Echoer(server, port=port)
        self._sent_at: Optional[float] = None
        self._outstanding = False
        client.packet_handlers.append(self._handle_reply)

    def start(self, at_ns: float = 0.0) -> None:
        self.sim.schedule_at(max(at_ns, self.sim.now), self._send_probe)

    def _send_probe(self) -> None:
        if len(self.rtts_ns) >= self.probes:
            return
        probe = udp_between(
            self.client,
            self.server,
            self.packet_size,
            src_port=self.port + 1,
            dst_port=self.port,
        )
        self._sent_at = self.sim.now
        self._outstanding = True
        self.client.send(probe)

    def _handle_reply(self, packet: Packet, interface: Interface) -> None:
        udp = packet.find(UdpHeader)
        if udp is None or udp.dst_port != self.port + 1 or not self._outstanding:
            return
        assert self._sent_at is not None
        self.rtts_ns.append(self.sim.now - self._sent_at)
        self._outstanding = False
        if len(self.rtts_ns) < self.probes:
            self.sim.schedule(0.0, self._send_probe)

    # -- results --------------------------------------------------------------

    @property
    def completed(self) -> int:
        return len(self.rtts_ns)

    def median_rtt_ns(self) -> float:
        if not self.rtts_ns:
            raise RuntimeError("no probes completed")
        return statistics.median(self.rtts_ns)

    def median_oneway_ns(self) -> float:
        """Median one-way latency (RTT/2), the Fig. 3a metric."""
        return self.median_rtt_ns() / 2
