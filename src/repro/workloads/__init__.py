"""Workload generators: perftest/netpipe analogs, incast, Zipf, DCTCP."""

from .dctcp import FEEDBACK_PORT, DctcpConfig, DctcpReceiver, DctcpSender
from .factory import UDP_HEADER_BYTES, udp_between
from .flows import FlowKey, ZipfFlowWorkload, ZipfSampler
from .incast import INCAST_PORT, IncastReport, IncastWorkload
from .netpipe import Echoer, PingPong
from .perftest import PacketSink, RawEthernetBw, SenderReport
from .zipf import OpenLoopZipfTraffic, ZipfGenerator

__all__ = [
    "DctcpConfig",
    "DctcpReceiver",
    "DctcpSender",
    "Echoer",
    "FEEDBACK_PORT",
    "FlowKey",
    "INCAST_PORT",
    "IncastReport",
    "IncastWorkload",
    "OpenLoopZipfTraffic",
    "PacketSink",
    "PingPong",
    "RawEthernetBw",
    "SenderReport",
    "UDP_HEADER_BYTES",
    "ZipfFlowWorkload",
    "ZipfGenerator",
    "ZipfSampler",
    "udp_between",
]
