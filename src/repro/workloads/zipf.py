"""Million-flow Zipf workloads: O(1) sampling + open-loop arrivals.

The lookup-table scale runs need traffic over 1–10 M distinct flows with
the heavy-tailed popularity real data centers show.  The original
:class:`~repro.workloads.flows.ZipfSampler` builds an O(n) CDF — fine
for thousands of flows, unusable at millions — so this module provides:

* :class:`ZipfGenerator` — rejection-inversion sampling after Hörmann &
  Derflinger ("Rejection-inversion to generate variates from monotone
  discrete distributions", the algorithm behind Apache Commons'
  ``ZipfRejectionInversionSampler``): **O(1) memory and ~O(1) time per
  sample** at any population size, deterministic under a seeded
  ``random.Random``.

* :class:`OpenLoopZipfTraffic` — an open-loop arrival process over a
  Zipf flow population: packets arrive on a schedule (seeded Poisson or
  fixed pacing) that does **not** react to the system under test, the
  arrival model §5-style saturation measurements need.  The rank
  sequence is precomputed from its own derived stream, so experiments
  can install table entries for exactly the flows that will appear
  before the first packet is sent.

Flows map to UDP port pairs exactly like
:class:`~repro.workloads.flows.ZipfFlowWorkload` (rank → ``src_port``,
``dst_port``), so 5-tuples stay distinct across the whole population.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Optional

from ..hosts.server import Host
from ..net.packet import Packet
from ..sim.rng import SeedSequence
from ..sim.simulator import Simulator
from ..sim.units import SEC
from .factory import udp_between
from .flows import FlowKey


class ZipfGenerator:
    """Sample ranks 0..n-1 with P(rank) ∝ 1/(rank+1)^alpha in O(1).

    Rejection-inversion: invert the integral of the continuous envelope
    ``h(x) = x^-alpha`` and reject the (rare) overshoots.  No tables, no
    setup cost proportional to *n* — the properties that let a single
    run sweep 10 M-flow populations.  ``alpha = 0`` degenerates to
    uniform sampling.
    """

    def __init__(self, n: int, alpha: float, rng: random.Random) -> None:
        if n <= 0:
            raise ValueError(f"need at least one item, got {n}")
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.n = n
        self.alpha = alpha
        self._rng = rng
        if alpha > 0:
            self._h_x1 = self._h_integral(1.5) - 1.0
            self._h_n = self._h_integral(n + 0.5)
            self._s = 2.0 - self._h_integral_inverse(
                self._h_integral(2.5) - self._h(2.0)
            )

    # H(x) = ∫ h, via the numerically stable helpers below.
    def _h_integral(self, x: float) -> float:
        log_x = math.log(x)
        return _helper2((1.0 - self.alpha) * log_x) * log_x

    def _h(self, x: float) -> float:
        return math.exp(-self.alpha * math.log(x))

    def _h_integral_inverse(self, x: float) -> float:
        t = x * (1.0 - self.alpha)
        if t < -1.0:
            t = -1.0  # guard the log1p singularity at the distribution head
        return math.exp(_helper1(t) * x)

    def sample(self) -> int:
        """One Zipf variate (0-based rank), consuming rng.random() draws."""
        if self.alpha == 0.0:
            return self._rng.randrange(self.n)
        while True:
            u = self._h_n + self._rng.random() * (self._h_x1 - self._h_n)
            x = self._h_integral_inverse(u)
            k = int(x + 0.5)
            if k < 1:
                k = 1
            elif k > self.n:
                k = self.n
            if k - x <= self._s or u >= self._h_integral(k + 0.5) - self._h(k):
                return k - 1


def _helper1(x: float) -> float:
    """log1p(x) / x, stable near zero."""
    if abs(x) > 1e-8:
        return math.log1p(x) / x
    return 1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))


def _helper2(x: float) -> float:
    """expm1(x) / x, stable near zero."""
    if abs(x) > 1e-8:
        return math.expm1(x) / x
    return 1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + 0.25 * x))


class OpenLoopZipfTraffic:
    """Open-loop packet arrivals over a seeded Zipf flow population.

    Arrivals follow their own clock — seeded Poisson (``arrival=
    "poisson"``, the default) or deterministic pacing (``"paced"``) at
    ``rate_pps`` — regardless of how the switch or the remote table are
    coping, which is what makes measured miss throughput an *offered
    load* number rather than a closed-loop artifact.

    Determinism: the rank sequence and the arrival jitter come from
    independent streams derived from ``seed`` (via
    :class:`~repro.sim.rng.SeedSequence`), so the *same flows in the
    same order* appear whatever the arrival model, and experiments can
    call :meth:`distinct_ranks` before starting to pre-install exactly
    the flows the run will offer.
    """

    BASE_PORT = 1024
    #: Port-space fan-out (ranks per dst port) — matches ZipfFlowWorkload.
    PORT_SPAN = 60_000

    def __init__(
        self,
        sim: Simulator,
        src: Host,
        dst: Host,
        flows: int,
        alpha: float = 1.0,
        packet_size: int = 128,
        rate_pps: float = 1e6,
        count: int = 10_000,
        seed: int = 0,
        arrival: str = "poisson",
    ) -> None:
        if flows > self.PORT_SPAN * self.PORT_SPAN:
            raise ValueError(f"flow population too large: {flows}")
        if arrival not in ("poisson", "paced"):
            raise ValueError(f"unknown arrival process: {arrival!r}")
        if rate_pps <= 0:
            raise ValueError(f"rate must be positive, got {rate_pps}")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.flows = flows
        self.alpha = alpha
        self.packet_size = packet_size
        self.rate_pps = rate_pps
        self.count = count
        self.arrival = arrival
        seeds = SeedSequence(seed)
        self._arrival_rng = seeds.stream("zipf.arrivals")
        self._mean_gap_ns = SEC / rate_pps
        # The rank schedule is fixed up front: sampling is O(1) per
        # packet, so even million-packet schedules build in well under a
        # second, and the population becomes inspectable pre-run.
        generator = ZipfGenerator(flows, alpha, seeds.stream("zipf.ranks"))
        self.schedule: List[int] = [generator.sample() for _ in range(count)]
        self.sent_by_rank: Dict[int, int] = {}
        self.packets_sent = 0
        self._cursor = 0
        self.on_done: Optional[Callable[[], None]] = None
        self._template = udp_between(src, dst, packet_size)

    # -- population introspection (pre-run) ------------------------------------

    def distinct_ranks(self) -> List[int]:
        """Sorted ranks that will actually appear, for pre-installation."""
        return sorted(set(self.schedule))

    def flow_key(self, rank: int) -> FlowKey:
        """Deterministic flow → port-pair mapping (shared with flows.py)."""
        return FlowKey(
            rank=rank,
            src_port=self.BASE_PORT + rank % self.PORT_SPAN,
            dst_port=self.BASE_PORT + rank // self.PORT_SPAN,
        )

    def packet_for(self, rank: int) -> Packet:
        key = self.flow_key(rank)
        packet = udp_between(
            self.src,
            self.dst,
            self.packet_size,
            src_port=key.src_port,
            dst_port=key.dst_port,
        )
        packet.meta["flow_rank"] = rank
        packet.meta["sent_at"] = self.sim.now
        return packet

    # -- the arrival process ----------------------------------------------------

    def _gap_ns(self) -> float:
        if self.arrival == "poisson":
            return self._arrival_rng.expovariate(1.0) * self._mean_gap_ns
        return self._mean_gap_ns

    def start(self, at_ns: float = 0.0) -> None:
        self.sim.schedule_at(max(at_ns, self.sim.now), self._tick)

    def _tick(self) -> None:
        if self._cursor >= self.count:
            if self.on_done is not None:
                self.on_done()
            return
        rank = self.schedule[self._cursor]
        self._cursor += 1
        self.src.send(self.packet_for(rank))
        self.sent_by_rank[rank] = self.sent_by_rank.get(rank, 0) + 1
        self.packets_sent += 1
        self.sim.schedule(self._gap_ns(), self._tick)

    def distinct_flows_sent(self) -> int:
        return len(self.sent_by_rank)

    def heavy_hitters(self, threshold: int) -> Dict[int, int]:
        """Ground-truth flows with at least *threshold* packets."""
        return {
            rank: count
            for rank, count in self.sent_by_rank.items()
            if count >= threshold
        }
