"""``raw_ethernet_bw`` analog: a constant-rate packet blaster (§5).

The paper uses the Mellanox perftest suite's ``raw_ethernet_bw`` to
generate raw Ethernet traffic "at configurable data rate, up to 40 Gbps
line rate".  :class:`RawEthernetBw` does the same: it paces frames of a
fixed size at an offered rate from one host toward another, and the
matching :class:`PacketSink` counts deliveries for goodput/loss accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..hosts.server import Host
from ..net.headers import UdpHeader
from ..net.node import Interface
from ..net.packet import Packet
from ..sim.simulator import Simulator
from ..sim.units import SEC
from .factory import udp_between


@dataclass
class SenderReport:
    packets_sent: int = 0
    bytes_sent: int = 0        # frame bytes (excl. preamble/IFG)
    first_send_ns: float = 0.0
    last_send_ns: float = 0.0

    @property
    def duration_ns(self) -> float:
        return self.last_send_ns - self.first_send_ns

    def offered_rate_bps(self) -> float:
        if self.duration_ns <= 0:
            return 0.0
        return self.bytes_sent * 8 * SEC / self.duration_ns


class RawEthernetBw:
    """Constant-rate UDP blaster from one host toward another."""

    def __init__(
        self,
        sim: Simulator,
        src: Host,
        dst: Host,
        packet_size: int = 1500,
        rate_bps: float = 40e9,
        count: Optional[int] = None,
        duration_ns: Optional[float] = None,
        src_port: int = 10_000,
        dst_port: int = 20_000,
        stamp: Optional[Callable[[Packet, int], None]] = None,
    ) -> None:
        if count is None and duration_ns is None:
            raise ValueError("specify count or duration_ns")
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive: {rate_bps}")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.packet_size = packet_size
        self.rate_bps = rate_bps
        self.count = count
        self.duration_ns = duration_ns
        self.src_port = src_port
        self.dst_port = dst_port
        self.stamp = stamp
        self.report = SenderReport()
        self._template = udp_between(
            src, dst, packet_size, src_port=src_port, dst_port=dst_port
        )
        # Pace on wire bytes so "40 Gbps offered" saturates exactly.
        self._interval_ns = self._template.wire_len * 8 * SEC / rate_bps
        self._stop_at: Optional[float] = None
        self._sequence = 0

    def start(self, at_ns: float = 0.0) -> None:
        if self.duration_ns is not None:
            self._stop_at = at_ns + self.duration_ns
        self.sim.schedule_at(max(at_ns, self.sim.now), self._tick)

    def _tick(self) -> None:
        if self.count is not None and self._sequence >= self.count:
            return
        if self._stop_at is not None and self.sim.now >= self._stop_at:
            return
        packet = self._template.clone()
        packet.meta["seq"] = self._sequence
        packet.meta["sent_at"] = self.sim.now
        if self.stamp is not None:
            self.stamp(packet, self._sequence)
        self.src.send(packet)
        if self.report.packets_sent == 0:
            self.report.first_send_ns = self.sim.now
        self.report.packets_sent += 1
        self.report.bytes_sent += packet.frame_len
        self.report.last_send_ns = self.sim.now
        self._sequence += 1
        self.sim.schedule(self._interval_ns, self._tick)


class PacketSink:
    """Counts packets delivered to a host (attach to ``packet_handlers``)."""

    def __init__(self, host: Host, dst_port: Optional[int] = None) -> None:
        self.host = host
        self.dst_port = dst_port
        self.packets = 0
        self.bytes = 0
        self.first_arrival_ns: Optional[float] = None
        self.last_arrival_ns: float = 0.0
        self.out_of_order = 0
        # Sequence gaps are tracked per sender (keyed by UDP source port).
        self._last_seq: dict = {}
        host.packet_handlers.append(self._handle)

    def _handle(self, packet: Packet, interface: Interface) -> None:
        udp = packet.find(UdpHeader)
        if self.dst_port is not None and (
            udp is None or udp.dst_port != self.dst_port
        ):
            return
        now = self.host.sim.now
        if self.first_arrival_ns is None:
            self.first_arrival_ns = now
        self.last_arrival_ns = now
        self.packets += 1
        self.bytes += packet.frame_len
        seq = packet.meta.get("seq")
        if seq is not None and udp is not None:
            last = self._last_seq.get(udp.src_port)
            if last is not None and seq < last:
                self.out_of_order += 1
            self._last_seq[udp.src_port] = seq

    def goodput_bps(self) -> float:
        """Delivered rate over the arrival window (frame bytes)."""
        if self.first_arrival_ns is None:
            return 0.0
        window = self.last_arrival_ns - self.first_arrival_ns
        if window <= 0:
            return 0.0
        return self.bytes * 8 * SEC / window
