"""A DCTCP-style ECN-reactive sender/receiver pair.

§2.1 splits responsibility: the remote packet buffer absorbs *bursts*,
while "(in the case of persistent congestion) end-to-end congestion
control based on ECN [36] or delay [28] should have slowed traffic."
These classes provide that end-to-end loop over UDP:

* :class:`DctcpSender` paces ECT(0)-marked packets and adapts its rate to
  the CE fraction echoed back (DCTCP's ``alpha`` estimator: multiplicative
  decrease proportional to the marked fraction, additive increase when a
  window comes back clean).
* :class:`DctcpReceiver` counts CE marks per window and echoes a compact
  feedback packet to the sender (the stand-in for DCTCP's ECE stream).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..hosts.server import Host
from ..net.headers import EthernetHeader, Ipv4Header, UdpHeader
from ..net.node import Interface
from ..net.packet import Packet
from ..sim.simulator import Simulator
from ..sim.units import SEC, gbps
from .factory import udp_between

#: UDP port feedback packets are addressed to (one sender per host).
FEEDBACK_PORT = 41_000
#: Feedback payload: window size, CE-marked count, window sequence.
_FEEDBACK_FORMAT = "!HHI"


@dataclass
class DctcpConfig:
    """DCTCP knobs (defaults follow the paper's recommendations)."""

    #: EWMA gain g for the alpha estimator.
    gain: float = 1 / 16
    #: Feedback window in packets.
    window_packets: int = 32
    #: Additive increase applied per clean control interval.
    additive_increase_bps: float = gbps(1)
    min_rate_bps: float = gbps(0.25)
    max_rate_bps: float = gbps(40)
    #: DCTCP adjusts once per RTT; feedback windows arrive far more often
    #: at 40 GbE, so rate/alpha updates are gated to this interval
    #: (roughly the control RTT including the remote ring's sojourn).
    control_interval_ns: float = 100_000.0
    #: Slow-start exit: the very first marked interval halves the rate
    #: outright (alpha hasn't warmed up yet, and line-rate senders must
    #: back off before the deep remote ring bufferbloats the loop).
    first_mark_halves: bool = True


class DctcpSender:
    """Paced ECT(0) UDP sender that reacts to CE feedback."""

    def __init__(
        self,
        sim: Simulator,
        src: Host,
        dst: Host,
        packet_size: int = 1500,
        rate_bps: float = gbps(40),
        duration_ns: Optional[float] = None,
        count: Optional[int] = None,
        src_port: int = 42_000,
        dst_port: int = 42_001,
        config: Optional[DctcpConfig] = None,
    ) -> None:
        if duration_ns is None and count is None:
            raise ValueError("specify duration_ns or count")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.packet_size = packet_size
        self.rate_bps = rate_bps
        self.duration_ns = duration_ns
        self.count = count
        self.src_port = src_port
        self.dst_port = dst_port
        self.config = config if config is not None else DctcpConfig()
        self.alpha = 0.0
        self.packets_sent = 0
        self.feedback_windows = 0
        self.rate_history: list = []
        self._acc_window = 0
        self._acc_marked = 0
        self._last_control = 0.0
        self._seen_marks = False
        self._stop_at: Optional[float] = None
        self._wire_bits = udp_between(src, dst, packet_size).wire_len * 8
        src.packet_handlers.append(self._handle_feedback)

    def start(self, at_ns: float = 0.0) -> None:
        if self.duration_ns is not None:
            self._stop_at = at_ns + self.duration_ns
        self.sim.schedule_at(max(at_ns, self.sim.now), self._tick)

    def _tick(self) -> None:
        if self.count is not None and self.packets_sent >= self.count:
            return
        if self._stop_at is not None and self.sim.now >= self._stop_at:
            return
        packet = udp_between(
            self.src, self.dst, self.packet_size,
            src_port=self.src_port, dst_port=self.dst_port,
        )
        packet.require(Ipv4Header).ecn = 2  # ECT(0)
        packet.meta["seq"] = self.packets_sent
        packet.meta["sent_at"] = self.sim.now
        self.src.send(packet)
        self.packets_sent += 1
        self.sim.schedule(self._wire_bits * SEC / self.rate_bps, self._tick)

    # -- congestion response ------------------------------------------------------

    def _handle_feedback(self, packet: Packet, interface: Interface) -> None:
        udp = packet.find(UdpHeader)
        if udp is None or udp.dst_port != FEEDBACK_PORT:
            return
        if len(packet.payload) < struct.calcsize(_FEEDBACK_FORMAT):
            return
        window, marked, _seq = struct.unpack(
            _FEEDBACK_FORMAT, packet.payload[: struct.calcsize(_FEEDBACK_FORMAT)]
        )
        if window == 0:
            return
        self.feedback_windows += 1
        self._acc_window += window
        self._acc_marked += marked
        # One control action per interval (DCTCP's per-RTT cadence);
        # feedback between actions only accumulates into the CE fraction.
        if self.sim.now - self._last_control < self.config.control_interval_ns:
            return
        self._last_control = self.sim.now
        fraction = self._acc_marked / self._acc_window
        g = self.config.gain
        self.alpha = (1 - g) * self.alpha + g * fraction
        if self._acc_marked:
            if self.config.first_mark_halves and not self._seen_marks:
                self.rate_bps *= 0.5
            else:
                self.rate_bps *= 1 - self.alpha / 2
            self._seen_marks = True
        else:
            self.rate_bps += self.config.additive_increase_bps
        self.rate_bps = min(
            self.config.max_rate_bps,
            max(self.config.min_rate_bps, self.rate_bps),
        )
        self._acc_window = 0
        self._acc_marked = 0
        self.rate_history.append((self.sim.now, self.rate_bps))


class DctcpReceiver:
    """Counts CE marks per flow and echoes windowed feedback."""

    def __init__(
        self,
        host: Host,
        dst_port: int = 42_001,
        window_packets: int = 32,
    ) -> None:
        self.host = host
        self.dst_port = dst_port
        self.window_packets = window_packets
        self.packets = 0
        self.ce_packets = 0
        # (src_ip value, src_port) -> [window count, marked count, windows sent]
        self._flows: Dict[Tuple[int, int], list] = {}
        host.packet_handlers.append(self._handle)

    def _handle(self, packet: Packet, interface: Interface) -> None:
        udp = packet.find(UdpHeader)
        ip = packet.find(Ipv4Header)
        if udp is None or ip is None or udp.dst_port != self.dst_port:
            return
        self.packets += 1
        marked = ip.ecn == 3
        if marked:
            self.ce_packets += 1
        key = (ip.src.value, udp.src_port)
        state = self._flows.setdefault(key, [0, 0, 0])
        state[0] += 1
        state[1] += int(marked)
        if state[0] >= self.window_packets:
            self._send_feedback(ip, state)
            state[0] = 0
            state[1] = 0
            state[2] += 1

    def _send_feedback(self, ip: Ipv4Header, state: list) -> None:
        # L2: static ARP — testbed hosts are 10.0.0.x <-> 02:00:00:00:00:x
        # (a full ARP model is out of scope for a one-hop topology).
        from ..net.addresses import MacAddress

        sender_mac = MacAddress(0x02_00_00_00_00_00 | (ip.src.value & 0xFF))
        feedback = Packet(
            headers=[
                EthernetHeader(dst=sender_mac, src=self.host.eth.mac),
                Ipv4Header(src=self.host.eth.ip, dst=ip.src),
                UdpHeader(src_port=self.dst_port, dst_port=FEEDBACK_PORT),
            ],
            payload=struct.pack(_FEEDBACK_FORMAT, state[0], state[1], state[2]),
        )
        feedback.fixup_lengths()
        self.host.send(feedback)
