"""Link-level fault models: what can go wrong on a wire, made injectable.

The paper's evaluation assumes a clean point-to-point 40 GbE path between
switch and memory server — §5 only *observes* failures at the far end
("RDMA requests were occasionally dropped at the NIC") and never models
the wire itself misbehaving.  Real deployments do not get that luxury:
LinkGuardian (NUS-SNL) measures corruption loss on exactly this class of
switch-to-NIC link and builds link-local recovery for it, and the same
impairment catalogue (random loss, bursty loss, reordering, duplication,
jitter, bit corruption) is what any RDMA-over-lossy-fabric design must
survive.

Every model here is a small pure-ish transformer over a list of
*deliveries* — ``(delay_ns, packet)`` pairs about to be scheduled onto
the far interface.  Dropping removes a pair, duplication appends clones,
jitter/reordering perturb the delay, corruption swaps in a bit-flipped
clone.  Models draw all randomness from a ``random.Random`` bound by the
owning :class:`~repro.faults.plan.FaultPlan` (derived from
:class:`~repro.sim.rng.SeedSequence`), so a chaos run replays exactly:
same seed, same byte-identical packet timeline.

Models are composable: the :class:`~repro.faults.injectors.LinkFaultInjector`
applies every armed model in arming order, so ``GilbertElliottLoss`` +
``Jitter`` behaves like a flapping cable on a long path.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple, TYPE_CHECKING

from ..net.packet import Packet
from ..rdma.headers import AtomicEthHeader, BthHeader, RethHeader

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .injectors import LinkFaultInjector

#: One scheduled hand-off to the receiving interface.
Delivery = Tuple[float, Packet]


class LinkFault:
    """Base class for link fault models.

    Subclasses override :meth:`apply`, transforming the delivery list for
    one ``carry()`` and reporting effects through the injector (which
    counts them in the registry and emits ``FAULT`` trace events).
    """

    #: Short label used in metric/trace channel names and RNG stream names.
    name = "fault"

    def __init__(self) -> None:
        self.rng: Optional[random.Random] = None

    def bind(self, rng: random.Random) -> None:
        """Attach an RNG stream; the first binding wins.

        A :class:`~repro.faults.plan.FaultPlan` binds each fault to its
        own named :class:`~repro.sim.rng.SeedSequence` stream before the
        run starts, which is what makes chaos runs replayable.
        """
        if self.rng is None:
            self.rng = rng

    def apply(
        self, deliveries: List[Delivery], injector: "LinkFaultInjector"
    ) -> List[Delivery]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class IidLoss(LinkFault):
    """Independent per-packet loss with a fixed probability.

    The memoryless baseline impairment — the chaos experiment sweeps this
    to measure loss rate vs. goodput (and the recovery machinery keeps
    the counter totals exact).
    """

    name = "iid-loss"

    def __init__(self, probability: float) -> None:
        super().__init__()
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"loss probability out of range: {probability}")
        self.probability = probability

    def apply(
        self, deliveries: List[Delivery], injector: "LinkFaultInjector"
    ) -> List[Delivery]:
        if self.probability <= 0.0:
            return deliveries
        kept: List[Delivery] = []
        for delivery in deliveries:
            if self.rng.random() < self.probability:
                injector.note("dropped", delivery[1])
            else:
                kept.append(delivery)
        return kept


class GilbertElliottLoss(LinkFault):
    """Two-state Markov burst loss (the classic Gilbert-Elliott channel).

    A *good* state that rarely loses and a *bad* state that loses heavily,
    with per-packet transition probabilities between them.  This is the
    standard model for the bursty corruption loss LinkGuardian measures on
    optical links — losses cluster, which is exactly the case that defeats
    naive single-retry recovery and motivates real go-back-N.
    """

    name = "ge-loss"

    def __init__(
        self,
        p_good_bad: float,
        p_bad_good: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
    ) -> None:
        super().__init__()
        for label, p in (
            ("p_good_bad", p_good_bad),
            ("p_bad_good", p_bad_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{label} out of range: {p}")
        self.p_good_bad = p_good_bad
        self.p_bad_good = p_bad_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.bad = False

    def apply(
        self, deliveries: List[Delivery], injector: "LinkFaultInjector"
    ) -> List[Delivery]:
        kept: List[Delivery] = []
        for delivery in deliveries:
            loss = self.loss_bad if self.bad else self.loss_good
            if loss > 0.0 and self.rng.random() < loss:
                injector.note(
                    "burst_dropped" if self.bad else "dropped", delivery[1]
                )
            else:
                kept.append(delivery)
            flip = self.p_bad_good if self.bad else self.p_good_bad
            if self.rng.random() < flip:
                self.bad = not self.bad
        return kept


class Blackout(LinkFault):
    """Total link outage: every packet in both directions is lost.

    Armed for a window by ``FaultPlan.at(t, injector, Blackout(),
    duration_ns=D)`` this models a cable pull / transceiver death — the
    §7 failover scenario, but recoverable.  Deterministic; draws no
    randomness.
    """

    name = "blackout"

    def apply(
        self, deliveries: List[Delivery], injector: "LinkFaultInjector"
    ) -> List[Delivery]:
        for delivery in deliveries:
            injector.note("blackout_dropped", delivery[1])
        return []


class Duplicate(LinkFault):
    """Deliver extra copies of a packet with some probability.

    RC transports must absorb duplicates (the responder's PSN check and
    atomic replay cache exist for this); this model proves they do.
    Clones share payload bytes but carry independent headers, mirroring
    what a misbehaving switch mirror would emit.
    """

    name = "duplicate"

    def __init__(self, probability: float, copies: int = 1) -> None:
        super().__init__()
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"duplicate probability out of range: {probability}")
        if copies < 1:
            raise ValueError(f"copies must be >= 1, got {copies}")
        self.probability = probability
        self.copies = copies

    def apply(
        self, deliveries: List[Delivery], injector: "LinkFaultInjector"
    ) -> List[Delivery]:
        out: List[Delivery] = []
        for delay, packet in deliveries:
            out.append((delay, packet))
            if self.probability > 0.0 and self.rng.random() < self.probability:
                for _ in range(self.copies):
                    injector.note("duplicated", packet)
                    out.append((delay, packet.clone()))
        return out


class Jitter(LinkFault):
    """Add uniform random extra propagation delay to every packet.

    Stresses the retransmission timeout calibration: jitter close to the
    RTO provokes spurious retransmissions, which the responder must (and
    does) absorb as duplicates.
    """

    name = "jitter"

    def __init__(self, max_ns: float, min_ns: float = 0.0) -> None:
        super().__init__()
        if min_ns < 0 or max_ns < min_ns:
            raise ValueError(f"bad jitter range [{min_ns}, {max_ns}]")
        self.min_ns = min_ns
        self.max_ns = max_ns

    def apply(
        self, deliveries: List[Delivery], injector: "LinkFaultInjector"
    ) -> List[Delivery]:
        out: List[Delivery] = []
        for delay, packet in deliveries:
            extra = self.rng.uniform(self.min_ns, self.max_ns)
            if extra > 0.0:
                injector.note("jittered", packet)
            out.append((delay + extra, packet))
        return out


class Reorder(LinkFault):
    """Hold a packet back so later traffic overtakes it on the wire.

    With probability *probability* a packet is delayed ``hold_ns`` beyond
    normal propagation.  A held *request* arrives with a future-PSN gap
    behind its successors and draws a PSN-sequence NAK — the reordering
    signature the go-back-N requester must tolerate without losing work.
    """

    name = "reorder"

    def __init__(self, probability: float, hold_ns: float = 2_000.0) -> None:
        super().__init__()
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"reorder probability out of range: {probability}")
        if hold_ns <= 0:
            raise ValueError(f"hold_ns must be positive, got {hold_ns}")
        self.probability = probability
        self.hold_ns = hold_ns

    def apply(
        self, deliveries: List[Delivery], injector: "LinkFaultInjector"
    ) -> List[Delivery]:
        out: List[Delivery] = []
        for delay, packet in deliveries:
            if self.probability > 0.0 and self.rng.random() < self.probability:
                injector.note("reordered", packet)
                delay += self.hold_ns
            out.append((delay, packet))
        return out


class Corrupt(LinkFault):
    """Flip one random bit of a packet in flight.

    The corruption loss LinkGuardian studies: the frame arrives, but its
    contents are wrong.  Detection is the ICRC's job — corrupted packets
    fail :func:`repro.rdma.packets.verify_icrc` at the receiver and are
    dropped (counted as ``icrc_drops``), converting corruption into loss
    that the retransmission machinery then repairs.  Packets whose ICRC
    was never computed (``value == 0``, the default for simulation speed)
    are *silently* corrupted — which is precisely the failure mode the
    end-to-end regression test demonstrates integrity protection against
    (see :func:`repro.rdma.packets.set_integrity_default`).

    The original packet object is never touched (sender-side state may
    hold a reference for retransmission); a clone takes the damage.
    """

    name = "corrupt"

    def __init__(self, probability: float) -> None:
        super().__init__()
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"corrupt probability out of range: {probability}")
        self.probability = probability

    def apply(
        self, deliveries: List[Delivery], injector: "LinkFaultInjector"
    ) -> List[Delivery]:
        out: List[Delivery] = []
        for delay, packet in deliveries:
            if self.probability > 0.0 and self.rng.random() < self.probability:
                packet = self._corrupted(packet)
                injector.note("corrupted", packet)
            out.append((delay, packet))
        return out

    def _corrupted(self, packet: Packet) -> Packet:
        mutant = packet.clone()
        if mutant.payload:
            index = self.rng.randrange(len(mutant.payload))
            data = bytearray(mutant.payload)
            data[index] ^= 1 << self.rng.randrange(8)
            mutant.payload = bytes(data)
            return mutant
        # No payload (READ / Fetch-and-Add requests, ACKs): damage the
        # innermost RoCE field instead.  Field assignment invalidates the
        # header's cached pack bytes, so the stale ICRC trailer no longer
        # matches and verification catches the flip.
        atomic = mutant.find(AtomicEthHeader)
        if atomic is not None:
            atomic.swap_add ^= 1 << self.rng.randrange(48)
            return mutant
        reth = mutant.find(RethHeader)
        if reth is not None:
            reth.virtual_address ^= 1 << self.rng.randrange(48)
            return mutant
        bth = mutant.find(BthHeader)
        if bth is not None:
            bth.psn ^= 1 << self.rng.randrange(20)
        return mutant
