"""Fault injectors: where the models meet the simulated hardware.

Two attachment points, matching where real failures live:

* :class:`LinkFaultInjector` hooks a :class:`~repro.net.link.Link` (the
  wire itself — the corruption/loss path LinkGuardian instruments), and
  applies armed :class:`~repro.faults.models.LinkFault` models to every
  packet the link carries.
* :class:`RnicFaultInjector` hooks an :class:`~repro.rdma.rnic.Rnic`
  (the far-end NIC — §5's "RDMA requests were occasionally dropped at
  the NIC", and the fragile receive pipeline RDCA documents), dropping
  or stalling traffic *after* it survived the wire.

Both claim a scope in the simulation's metric registry
(``faults.link[<name>]`` / ``faults.rnic[<name>]``) so every injected
event is accounted, and emit ``FAULT`` events into the wire trace when
tracing is on — a chaos run's trace interleaves the faults with the
recovery they provoked, on one timeline.

Injectors are mechanism; policy (what to inject, when, with which seed)
belongs to :class:`~repro.faults.plan.FaultPlan`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..net.link import Link
from ..net.packet import Packet
from ..obs.registry import Counter
from ..obs.trace import KIND_FAULT
from ..rdma.headers import BthHeader
from ..rdma.rnic import Rnic
from .models import Delivery, LinkFault


class _PacketTrigger:
    """Arm *fault* on the Nth carried packet, optionally for a count."""

    def __init__(self, nth: int, fault: LinkFault, count: Optional[int]) -> None:
        if nth < 1:
            raise ValueError(f"nth must be >= 1, got {nth}")
        if count is not None and count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self.nth = nth
        self.fault = fault
        self.count = count


class LinkFaultInjector:
    """Applies armed fault models to every packet a link carries.

    Installs itself as ``link.fault_injector``; the link forwards each
    ``carry()`` here instead of scheduling delivery directly.  With no
    models armed the injector is pass-through (one propagation-delay
    schedule, exactly what the link would have done).

    ``direction`` restricts injection to one half of the duplex pair:
    ``"a2b"`` / ``"b2a"`` (as the link names its interfaces) or
    ``"both"``.  Asymmetric impairment matters — a lossy request path
    exercises responder-side NAKs, a lossy response path exercises
    requester timeouts, and they recover differently.
    """

    def __init__(
        self,
        link: Link,
        name: Optional[str] = None,
        rng: Optional[random.Random] = None,
        direction: str = "both",
    ) -> None:
        if direction not in ("both", "a2b", "b2a"):
            raise ValueError(f"bad direction: {direction!r}")
        self.link = link
        self.name = (
            name
            if name is not None
            else f"{link.a.node.name}<->{link.b.node.name}"
        )
        self.rng = rng if rng is not None else random.Random(0)
        self.direction = direction
        self.models: List[LinkFault] = []
        self._triggers: List[_PacketTrigger] = []
        self._seen = 0
        obs = link.sim.obs
        #: This injector's scope in the simulation's metric registry;
        #: per-effect counters (dropped, corrupted, duplicated, ...) are
        #: created lazily as effects occur.
        self.metrics = obs.registry.unique_scope(f"faults.link[{self.name}]")
        self._trace = obs.trace
        self._trace_node = f"fault:{self.name}"
        self._m_carried = self.metrics.counter("carried")
        self._m_delivered = self.metrics.counter("delivered")
        self._counters: Dict[str, Counter] = {}
        self.metrics.gauge("active_models", fn=lambda s=self: len(s.models))
        link.fault_injector = self

    # -- arming ---------------------------------------------------------------

    def arm(self, fault: LinkFault) -> LinkFault:
        """Activate *fault* (idempotent); models apply in arming order."""
        fault.bind(self.rng)
        if fault not in self.models:
            self.models.append(fault)
        return fault

    def disarm(self, fault: LinkFault) -> None:
        """Deactivate *fault*; unknown faults are ignored (already healed)."""
        if fault in self.models:
            self.models.remove(fault)

    def when_packet(
        self, nth: int, fault: LinkFault, count: Optional[int] = None
    ) -> None:
        """Arm *fault* when the *nth* packet enters the link (1-based).

        With *count*, disarm again after that many further packets — the
        "break exactly the Nth request" probe a targeted regression test
        needs.
        """
        fault.bind(self.rng)
        self._triggers.append(_PacketTrigger(nth, fault, count))

    # -- accounting -----------------------------------------------------------

    def count(self, effect: str) -> Counter:
        counter = self._counters.get(effect)
        if counter is None:
            counter = self.metrics.counter(effect)
            self._counters[effect] = counter
        return counter

    @property
    def effects(self) -> Dict[str, int]:
        """Injected-effect totals for *this* injector (``{effect: n}``).

        Read these rather than snapshotting the registry by scope name:
        under a shared registry (e.g. a benchmark harness running several
        sweeps inside one ``Observability.activate()``) later injectors
        get ``#2``-suffixed scopes, and a name-based snapshot silently
        reads the wrong run's counters.
        """
        return {name: c.value for name, c in sorted(self._counters.items())}

    @property
    def dropped(self) -> int:
        """Total packets this injector removed, across all loss models."""
        return sum(
            value
            for name, value in self.effects.items()
            if name == "dropped" or name.endswith("_dropped")
        )

    def note(self, effect: str, packet: Packet) -> None:
        """Record one injected *effect* on *packet* (registry + trace)."""
        self.count(effect).inc()
        if self._trace is not None:
            bth = packet.find(BthHeader)
            self._trace.emit(
                self.link.sim.now,
                self._trace_node,
                bth.dest_qp if bth is not None else 0,
                KIND_FAULT,
                psn=bth.psn if bth is not None else None,
                wire_bytes=packet.wire_len,
                channel=effect,
            )

    # -- the data path --------------------------------------------------------

    def carry(self, link: Link, src, packet: Packet) -> None:
        """Carry *packet* across *link*, applying every armed model."""
        dst = link.peer_of(src)
        self._seen += 1
        self._m_carried.inc()
        for trigger in list(self._triggers):
            if self._seen == trigger.nth:
                self.arm(trigger.fault)
                if trigger.count is None:
                    self._triggers.remove(trigger)
            elif (
                trigger.count is not None
                and self._seen == trigger.nth + trigger.count
            ):
                self.disarm(trigger.fault)
                self._triggers.remove(trigger)
        deliveries: List[Delivery] = [(link.propagation_ns, packet)]
        if self.models and self._in_scope(link, src):
            for model in list(self.models):
                deliveries = model.apply(deliveries, self)
                if not deliveries:
                    break
        for delay, delivered in deliveries:
            self._m_delivered.inc()
            link.sim.post_delivery(delay, dst, delivered)

    def _in_scope(self, link: Link, src) -> bool:
        if self.direction == "both":
            return True
        forward = src is link.a
        return forward if self.direction == "a2b" else not forward


# -- RNIC-side faults ----------------------------------------------------------


class RnicFault:
    """Base class for scheduled RNIC fault actions.

    Unlike link models these are not per-packet transformers: they flip
    injector state on (:meth:`start`) and off (:meth:`stop`), matching
    how NIC-level failures behave — a pipeline wedges for a while, then
    recovers (or doesn't).
    """

    name = "rnic-fault"

    def bind(self, rng: random.Random) -> None:
        """RNIC faults are deterministic; the RNG hook exists for symmetry."""

    def start(self, injector: "RnicFaultInjector") -> None:
        raise NotImplementedError

    def stop(self, injector: "RnicFaultInjector") -> None:
        """Default: one-shot faults have nothing to undo."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class RnicBlackout(RnicFault):
    """The NIC stops answering entirely (firmware wedge, PCIe hang).

    Every arriving packet is swallowed for the armed window.  This is
    the RDCA failure mode: the host and link are fine, the NIC is not.
    Requesters see pure silence — no NAKs — so only timeout-driven
    go-back-N recovers, and a long enough blackout escalates through
    retry exhaustion into the cluster health monitor.
    """

    name = "rnic-blackout"

    def start(self, injector: "RnicFaultInjector") -> None:
        injector.start_blackout()

    def stop(self, injector: "RnicFaultInjector") -> None:
        injector.end_blackout()


class RnicDropBurst(RnicFault):
    """Drop the next *n* packets that reach the NIC.

    The §5 observation made injectable: "RDMA requests were occasionally
    dropped at the NIC" under pressure.  A short burst exercises the NAK
    path (later requests arrive with a PSN gap); the requester must
    go-back-N without losing completions.
    """

    name = "rnic-drop-burst"

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"burst size must be >= 1, got {n}")
        self.n = n

    def start(self, injector: "RnicFaultInjector") -> None:
        injector.drop_next(self.n)


class AtomicEngineStall(RnicFault):
    """Freeze the NIC's atomic engine for a while.

    The bounded Fetch-and-Add engine (the reason the paper caps
    outstanding atomics) stops retiring operations for ``stall_ns``;
    queued atomics still execute in memory order but their responses
    wait out the stall.  Requester timeouts during the stall produce
    duplicate Fetch-and-Adds, which the responder's replay cache must
    answer without re-applying — exactly-once under delay.
    """

    name = "atomic-stall"

    def __init__(self, stall_ns: float) -> None:
        if stall_ns <= 0:
            raise ValueError(f"stall must be positive, got {stall_ns}")
        self.stall_ns = stall_ns

    def start(self, injector: "RnicFaultInjector") -> None:
        injector.stall_atomics(self.stall_ns)


class RnicFaultInjector:
    """Wraps one RNIC's packet entry point with injectable failures.

    Shadows ``rnic.handle_packet`` with an instance attribute; packets
    the injector lets through reach the original bound method, so the
    RNIC model itself is untouched.  Drops happen *before* the RNIC sees
    the packet — from the requester's perspective indistinguishable from
    wire loss, which is the point: §5 could not tell either.
    """

    def __init__(self, rnic: Rnic, name: Optional[str] = None) -> None:
        self.rnic = rnic
        self.sim = rnic.sim
        self.name = name if name is not None else rnic.name
        self.blackout = False
        self._drop_budget = 0
        obs = self.sim.obs
        self.metrics = obs.registry.unique_scope(f"faults.rnic[{self.name}]")
        self._trace = obs.trace
        self._trace_node = f"fault:{self.name}"
        self._m_blackout_drops = self.metrics.counter("blackout_drops")
        self._m_burst_drops = self.metrics.counter("burst_drops")
        self._m_blackouts = self.metrics.counter("blackouts")
        self._m_atomic_stalls = self.metrics.counter("atomic_stalls")
        self.metrics.gauge("blacked_out", fn=lambda s=self: int(s.blackout))
        self._inner = rnic.handle_packet
        rnic.handle_packet = self._handle_packet  # type: ignore[method-assign]
        rnic.fault_injector = self  # type: ignore[attr-defined]

    def _handle_packet(self, packet: Packet) -> None:
        if self.blackout:
            self._m_blackout_drops.inc()
            self._note("blackout_drop", packet)
            return
        if self._drop_budget > 0:
            self._drop_budget -= 1
            self._m_burst_drops.inc()
            self._note("burst_drop", packet)
            return
        self._inner(packet)

    def _note(self, effect: str, packet: Packet) -> None:
        if self._trace is not None:
            bth = packet.find(BthHeader)
            self._trace.emit(
                self.sim.now,
                self._trace_node,
                bth.dest_qp if bth is not None else 0,
                KIND_FAULT,
                psn=bth.psn if bth is not None else None,
                wire_bytes=packet.wire_len,
                channel=effect,
            )

    @property
    def effects(self) -> Dict[str, int]:
        """Injected-effect totals for *this* injector (``{effect: n}``).

        The RNIC-side twin of :attr:`LinkFaultInjector.effects` — read
        these instead of snapshotting the registry by scope name.
        """
        return {
            "blackout_drops": self._m_blackout_drops.value,
            "burst_drops": self._m_burst_drops.value,
            "blackouts": self._m_blackouts.value,
            "atomic_stalls": self._m_atomic_stalls.value,
        }

    # -- fault actions --------------------------------------------------------

    def start_blackout(self) -> None:
        if not self.blackout:
            self._m_blackouts.inc()
        self.blackout = True

    def end_blackout(self) -> None:
        self.blackout = False

    def drop_next(self, n: int) -> None:
        """Drop the next *n* packets reaching the NIC (budgets add up)."""
        if n < 1:
            raise ValueError(f"drop count must be >= 1, got {n}")
        self._drop_budget += n

    def stall_atomics(self, stall_ns: float) -> None:
        """Push the atomic engine's next free slot ``stall_ns`` out."""
        self._m_atomic_stalls.inc()
        self.rnic._atomic_free_at = max(
            self.rnic._atomic_free_at, self.sim.now + stall_ns
        )
