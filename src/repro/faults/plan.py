"""FaultPlan: a replayable schedule of what breaks, where, and when.

Chaos testing is only useful when a failing run can be re-run: the plan
is the single object that pins down every source of nondeterminism.  It
owns a :class:`~repro.sim.rng.SeedSequence` rooted at one seed and hands
each injector and each fault model its own named stream, so adding a
fault to a plan never perturbs the randomness of the ones already there
— the same property the workload RNGs rely on, extended to failure.

Usage::

    plan = FaultPlan(seed=7)
    wire = plan.on_link(tb.server_link)
    plan.at(0.0, wire, IidLoss(0.01))                    # from t=0, forever
    plan.at(usec(500), wire, Blackout(), duration_ns=usec(100))
    plan.on_packet(wire, Corrupt(1.0), nth=10, count=1)  # exactly packet #10
    nic = plan.on_rnic(tb.memory_server.rnic)
    plan.at(usec(200), nic, RnicDropBurst(4))
    plan.install(tb.sim)                                 # before sim.run()

Two trigger shapes, per the tentpole spec: **time-based** (inject at
t=X, optionally for duration D) and **packet-based** (on the Nth packet
the link carries, optionally for a count).  ``install()`` turns the
time-based entries into simulator events; packet triggers live in the
injector's carry path.  Replaying the same plan under the same seed
yields a byte-identical wire trace — the property test in
``tests/test_faults.py`` holds the subsystem to exactly that.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..net.link import Link
from ..rdma.rnic import Rnic
from ..sim.rng import SeedSequence
from ..sim.simulator import Simulator
from .injectors import LinkFaultInjector, RnicFaultInjector
from .models import LinkFault
from .injectors import RnicFault

AnyFault = Union[LinkFault, RnicFault]
AnyInjector = Union[LinkFaultInjector, RnicFaultInjector]


class FaultPlan:
    """A deterministic, installable schedule of fault injections."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        #: Root of every RNG stream the plan hands out; child streams are
        #: named, so plans compose without cross-perturbation.
        self.seeds = SeedSequence(self.seed).spawn("faults")
        #: (start_ns, duration_ns, injector, fault) in declaration order.
        self.entries: List[
            Tuple[float, Optional[float], AnyInjector, AnyFault]
        ] = []
        self._link_injectors: Dict[int, LinkFaultInjector] = {}
        self._rnic_injectors: Dict[int, RnicFaultInjector] = {}
        self._fault_counter = 0
        self._installed = False

    # -- injector factories ---------------------------------------------------

    def on_link(
        self,
        link: Link,
        name: Optional[str] = None,
        direction: str = "both",
    ) -> LinkFaultInjector:
        """The plan's (memoised) injector for *link*.

        The injector's RNG is the plan stream ``link[<name>]`` — distinct
        links under one plan draw independent randomness.
        """
        key = id(link)
        injector = self._link_injectors.get(key)
        if injector is None:
            inj_name = (
                name
                if name is not None
                else f"{link.a.node.name}<->{link.b.node.name}"
            )
            injector = LinkFaultInjector(
                link,
                name=inj_name,
                rng=self.seeds.stream(f"link[{inj_name}]"),
                direction=direction,
            )
            self._link_injectors[key] = injector
        return injector

    def on_rnic(self, rnic: Rnic, name: Optional[str] = None) -> RnicFaultInjector:
        """The plan's (memoised) injector for *rnic*."""
        key = id(rnic)
        injector = self._rnic_injectors.get(key)
        if injector is None:
            injector = RnicFaultInjector(rnic, name=name)
            self._rnic_injectors[key] = injector
        return injector

    # -- schedule entries -----------------------------------------------------

    def _bind(self, fault: AnyFault) -> None:
        self._fault_counter += 1
        fault.bind(self.seeds.stream(f"fault[{self._fault_counter}]:{fault.name}"))

    def at(
        self,
        start_ns: float,
        injector: AnyInjector,
        fault: AnyFault,
        duration_ns: Optional[float] = None,
    ) -> AnyFault:
        """Inject *fault* at ``t = start_ns``, optionally for a duration.

        Without *duration_ns* the fault stays armed for the rest of the
        run (or until the test disarms/stops it by hand).  Each fault
        gets its own RNG stream at declaration time, so declaration
        order — not firing order — fixes the randomness.
        """
        if start_ns < 0:
            raise ValueError(f"start must be >= 0, got {start_ns}")
        if duration_ns is not None and duration_ns <= 0:
            raise ValueError(f"duration must be positive, got {duration_ns}")
        if self._installed:
            raise RuntimeError("plan already installed; build a new one")
        self._bind(fault)
        self.entries.append((float(start_ns), duration_ns, injector, fault))
        return fault

    def on_packet(
        self,
        injector: LinkFaultInjector,
        fault: LinkFault,
        nth: int,
        count: Optional[int] = None,
    ) -> LinkFault:
        """Arm *fault* on the Nth packet *injector*'s link carries.

        Packet triggers are inherently link-side (the RNIC injector has
        no per-packet arming semantics — use :meth:`at` with
        :class:`~repro.faults.injectors.RnicDropBurst` instead).
        """
        if not isinstance(injector, LinkFaultInjector):
            raise TypeError("packet triggers only apply to link injectors")
        self._bind(fault)
        injector.when_packet(nth, fault, count=count)
        return fault

    # -- installation ---------------------------------------------------------

    def install(self, sim: Simulator) -> None:
        """Schedule every time-based entry onto *sim* (idempotent-once)."""
        if self._installed:
            raise RuntimeError("plan already installed")
        self._installed = True
        for start_ns, duration_ns, injector, fault in self.entries:
            sim.schedule_at(start_ns, self._start, injector, fault)
            if duration_ns is not None:
                sim.schedule_at(
                    start_ns + duration_ns, self._stop, injector, fault
                )

    @staticmethod
    def _start(injector: AnyInjector, fault: AnyFault) -> None:
        if isinstance(injector, RnicFaultInjector):
            fault.start(injector)
        else:
            injector.arm(fault)

    @staticmethod
    def _stop(injector: AnyInjector, fault: AnyFault) -> None:
        if isinstance(injector, RnicFaultInjector):
            fault.stop(injector)
        else:
            injector.disarm(fault)

    def __repr__(self) -> str:
        return (
            f"<FaultPlan seed={self.seed} entries={len(self.entries)} "
            f"links={len(self._link_injectors)} rnics={len(self._rnic_injectors)}>"
        )
