"""Seeded, deterministic fault injection for the simulated fabric.

The paper evaluates on a clean testbed and only *observes* failure from
the outside ("RDMA requests were occasionally dropped at the NIC", §5);
the ROADMAP's north star — graceful degradation under any scenario —
demands the opposite: make every failure injectable, deterministic, and
observable, then prove the primitives recover.

Three pieces, composing with the existing layers:

* :mod:`.models` — link impairments (i.i.d. and Gilbert-Elliott burst
  loss, reordering, duplication, jitter, bit corruption) as pluggable
  transformers over a link's deliveries.
* :mod:`.injectors` — the attachment points: a per-:class:`~repro.net.link.Link`
  injector applying armed models, and a per-:class:`~repro.rdma.rnic.Rnic`
  wrapper for NIC-side failures (drop bursts, atomic-engine stalls,
  blackout/recovery).  Both account every injected event in the metric
  registry (``faults.link[...]`` / ``faults.rnic[...]``) and the wire
  trace (``FAULT`` events).
* :mod:`.plan` — :class:`FaultPlan`, the replayable schedule: inject at
  t=X for duration D, or on the Nth carried packet, with all randomness
  derived from one seed via :class:`~repro.sim.rng.SeedSequence`.

Recovery is the other half of the subsystem and lives where it belongs:
go-back-N retransmission with exponential backoff in
:mod:`repro.rdma.rnic`, ICRC verification in :mod:`repro.rdma.packets`,
and retry-exhaustion escalation in :mod:`repro.cluster.health`.  See
DESIGN.md §10 for the full fault/recovery model and
:mod:`repro.experiments.chaos` for the soak experiment that holds it to
its guarantees.
"""

from .injectors import (
    AtomicEngineStall,
    LinkFaultInjector,
    RnicBlackout,
    RnicDropBurst,
    RnicFault,
    RnicFaultInjector,
)
from .models import (
    Blackout,
    Corrupt,
    Duplicate,
    GilbertElliottLoss,
    IidLoss,
    Jitter,
    LinkFault,
    Reorder,
)
from .plan import FaultPlan

__all__ = [
    "AtomicEngineStall",
    "Blackout",
    "Corrupt",
    "Duplicate",
    "FaultPlan",
    "GilbertElliottLoss",
    "IidLoss",
    "Jitter",
    "LinkFault",
    "LinkFaultInjector",
    "Reorder",
    "RnicBlackout",
    "RnicDropBurst",
    "RnicFault",
    "RnicFaultInjector",
]
