"""Host nodes: end hosts and remote-memory servers.

A :class:`Host` is a server with one NIC.  Matching the paper's testbed,
every host gets 64 GB of DRAM and an RDMA-capable NIC; RoCE packets are
steered to the RNIC (no CPU involvement), anything else goes to registered
packet handlers (the "application").
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..net.addresses import Ipv4Address, MacAddress
from ..net.node import Interface, Node
from ..net.packet import Packet
from ..rdma.headers import BthHeader
from ..rdma.memory import TIER_DRAM, AccessFlags, Dram, MemoryRegion
from ..rdma.rnic import Rnic, RnicConfig
from ..sim.simulator import Simulator
from ..sim.units import gib

PacketHandler = Callable[[Packet, Interface], None]


class Host(Node):
    """A server with a single RDMA-capable NIC."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        mac: MacAddress,
        ip: Ipv4Address,
        dram_bytes: int = gib(64),
        rnic_config: Optional[RnicConfig] = None,
    ) -> None:
        super().__init__(sim, name)
        self.eth = self.add_interface("eth0", MacAddress(mac), Ipv4Address(ip))
        self.dram = Dram(dram_bytes)
        self.rnic = Rnic(sim, f"{name}-rnic", self.eth, self.dram, rnic_config)
        self.packet_handlers: List[PacketHandler] = []
        self.rx_packets = 0
        self.rx_bytes = 0

    def receive(self, packet: Packet, interface: Interface) -> None:
        self.rx_packets += 1
        self.rx_bytes += packet.buffer_len
        if packet.find(BthHeader) is not None:
            # RoCE is terminated by the NIC — the host CPU never sees it.
            self.rnic.handle_packet(packet)
            return
        for handler in self.packet_handlers:
            handler(packet, interface)

    def receive_batch(self, packets: List[Packet], interface: Interface) -> None:
        # Hoists the NIC dispatch lookup out of the loop.  Binding
        # ``handle_packet`` here (not at init) keeps the RnicFaultInjector
        # contract: injectors shadow the method on the instance.
        self.rx_packets += len(packets)
        handle = self.rnic.handle_packet
        handlers = self.packet_handlers
        for packet in packets:
            self.rx_bytes += packet.buffer_len
            if packet.find(BthHeader) is not None:
                handle(packet)
                continue
            for handler in handlers:
                handler(packet, interface)

    def send(self, packet: Packet) -> bool:
        """Transmit *packet* out of the host's NIC."""
        return self.eth.send(packet)


class MemoryServer(Host):
    """A host whose only job is donating DRAM to the switch (§1).

    Convenience wrapper that tracks the regions it has lent out, and whose
    ``cpu_packets`` counter stays at zero in every experiment — the paper's
    "absolutely 0 % CPU overhead" claim, checked by tests.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        mac: MacAddress,
        ip: Ipv4Address,
        dram_bytes: int = gib(64),
        rnic_config: Optional[RnicConfig] = None,
    ) -> None:
        super().__init__(
            sim, name, mac, ip, dram_bytes=dram_bytes, rnic_config=rnic_config
        )
        self.lent_regions: List[MemoryRegion] = []
        #: Packets that reached host software (must stay 0 for pure RDMA).
        self.cpu_packets = 0
        self.packet_handlers.append(self._count_cpu_packet)

    def _count_cpu_packet(self, packet: Packet, interface: Interface) -> None:
        self.cpu_packets += 1

    def lend_memory(
        self,
        length: int,
        access: AccessFlags = AccessFlags.ALL_REMOTE,
        tier: str = TIER_DRAM,
    ) -> MemoryRegion:
        """Register a DRAM region for remote use and record the loan.

        ``tier`` tags the region with the memory tier it models
        (DESIGN.md §13): ``"fast"`` regions are served with the RNIC's
        fast-tier profile (lower READ latency, faster atomics) while
        still living in this server's budgeted DRAM object.
        """
        region = self.dram.register(length, access=access, tier=tier)
        self.lent_regions.append(region)
        return region
