"""Host nodes: end hosts, remote-memory servers."""

from .server import Host, MemoryServer, PacketHandler

__all__ = ["Host", "MemoryServer", "PacketHandler"]
