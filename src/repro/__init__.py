"""repro — reproduction of "Generic External Memory for Switch Data Planes".

HotNets 2018 (Kim, Zhu, Kim, Lee, Seshan).  The package provides:

* a discrete-event network simulator with byte-accurate RoCEv2,
* a programmable-switch model in the Tofino mould,
* the paper's three remote-memory primitives (packet buffer, lookup table,
  state store) implemented as switch data-plane components,
* the motivating applications, baselines, workloads and experiment
  harnesses that regenerate every table and figure in the paper.

Start with :mod:`repro.experiments` or the ``examples/`` scripts.
"""

__version__ = "0.1.0"
