"""An in-network key-value cache over remote memory (§2.2 / §6).

The paper names NetCache [19] as a prime beneficiary: an in-network KV
cache answers hot keys at switch line rate but is capped by SRAM; cold
keys fall back to the storage server's CPU.  With a remote value store in
server DRAM the switch can answer *misses* from the data plane too, by
issuing an RDMA READ for the value — the storage server's CPU serves only
writes/population.

Wire protocol (UDP, :class:`KvHeader`): GET(key) → REPLY(key, value, hit).
Remote value-store entry layout, one slot per hash bucket::

    0        1        16+1          16+1+VALUE_BYTES
    +--------+--------+-------------+
    | valid  | key    | value       |
    +--------+--------+-------------+
      u8       16 B     VALUE_BYTES

The stored key doubles as the collision check (full key compare, stronger
than the lookup-table fingerprint, since KV correctness is absolute).

Three modes, compared by :mod:`repro.experiments.kv_cache`:

* ``server``      — no cache; every GET hits the storage server's CPU.
* ``sram``        — hot keys cached in switch SRAM; misses go to the CPU.
* ``sram+remote`` — misses are answered with an RDMA READ instead; the
  server CPU sees no GETs at all.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional

from ..baselines.cpu_slowpath import CpuSlowPath
from ..core.channel import RemoteMemoryChannel
from ..core.rocegen import RoceRequestGenerator
from ..hosts.server import Host
from ..net.headers import EthernetHeader, HeaderError, Ipv4Header, UdpHeader
from ..net.node import Interface
from ..net.packet import Packet
from ..rdma.constants import Opcode
from ..switches.hashing import crc32
from ..switches.pipeline import PipelineContext
from ..switches.tables import ActionEntry, ExactMatchTable
from .programs import StaticL2Program

KV_UDP_PORT = 5800
KEY_BYTES = 16
VALUE_BYTES = 64
ENTRY_BYTES = 1 + KEY_BYTES + VALUE_BYTES


@dataclass
class KvHeader:
    """The KV query/reply header carried as UDP payload prefix."""

    OP_GET = 1
    OP_REPLY = 2

    op: int
    key: bytes
    value: bytes = b"\x00" * VALUE_BYTES
    hit: bool = False

    LENGTH = 1 + 1 + KEY_BYTES + VALUE_BYTES

    def __post_init__(self) -> None:
        if len(self.key) != KEY_BYTES:
            raise HeaderError(f"KV key must be {KEY_BYTES} B, got {len(self.key)}")
        if len(self.value) != VALUE_BYTES:
            raise HeaderError(
                f"KV value must be {VALUE_BYTES} B, got {len(self.value)}"
            )

    def pack(self) -> bytes:
        return (
            struct.pack("!BB", self.op, int(self.hit)) + self.key + self.value
        )

    @classmethod
    def unpack(cls, data: bytes) -> "KvHeader":
        if len(data) < cls.LENGTH:
            raise HeaderError(f"short KV header: {len(data)} bytes")
        op, hit = struct.unpack("!BB", data[:2])
        key = data[2 : 2 + KEY_BYTES]
        value = data[2 + KEY_BYTES : cls.LENGTH]
        return cls(op=op, key=key, value=value, hit=bool(hit))

    @property
    def byte_len(self) -> int:
        return self.LENGTH


def normalize_key(key: bytes) -> bytes:
    """Pad/trim an application key to the fixed KEY_BYTES width."""
    return key[:KEY_BYTES].ljust(KEY_BYTES, b"\x00")


def pack_entry(key: bytes, value: bytes) -> bytes:
    """Serialize a remote value-store entry."""
    return (
        b"\x01"
        + normalize_key(key)
        + value[:VALUE_BYTES].ljust(VALUE_BYTES, b"\x00")
    )


def unpack_entry(data: bytes):
    """Returns (valid, key, value) from a remote value-store entry."""
    if len(data) < ENTRY_BYTES:
        raise HeaderError(f"short KV entry: {len(data)} bytes")
    return bool(data[0]), data[1 : 1 + KEY_BYTES], data[1 + KEY_BYTES : ENTRY_BYTES]


@dataclass
class KvCacheStats:
    queries: int = 0
    sram_hits: int = 0
    remote_fetches: int = 0
    remote_hits: int = 0
    remote_misses: int = 0
    server_forwards: int = 0
    cache_fills: int = 0
    cache_evictions: int = 0


class RemoteValueStore:
    """Control-plane view of the value array in server DRAM."""

    def __init__(self, channel: RemoteMemoryChannel, buckets: int) -> None:
        needed = buckets * ENTRY_BYTES
        if needed > channel.length:
            raise ValueError(
                f"{buckets} buckets need {needed} B, channel has "
                f"{channel.length} B"
            )
        self.channel = channel
        self.buckets = buckets

    def bucket_of(self, key: bytes) -> int:
        # CRC32 alone is GF(2)-linear, so structured keys ("key-7" vs
        # "key-57") collide systematically in the low bits.  A
        # multiplicative finalizer (Fibonacci hashing) models the second
        # independent hash stage real designs pipeline after the CRC unit.
        digest = crc32(normalize_key(key))
        mixed = (digest * 0x9E3779B1) & 0xFFFFFFFF
        mixed ^= mixed >> 16
        return mixed % self.buckets

    def address_of(self, key: bytes) -> int:
        return self.channel.base_address + self.bucket_of(key) * ENTRY_BYTES

    def populate(self, key: bytes, value: bytes) -> None:
        """Install a key/value pair (the storage server's write path)."""
        self.channel.region.write(self.address_of(key), pack_entry(key, value))


class KvCacheProgram(StaticL2Program):
    """NetCache-style switch program with a remote-memory miss path."""

    def __init__(
        self,
        sram_entries: int = 64,
        cache_fill: bool = True,
    ) -> None:
        super().__init__()
        self.sram = ExactMatchTable("kv.sram", sram_entries)
        self.cache_fill = cache_fill
        self.stats = KvCacheStats()
        self.value_store: Optional[RemoteValueStore] = None
        self.rocegen: Optional[RoceRequestGenerator] = None
        self.server_port: Optional[int] = None
        # Remote fetches complete in issue order (RC): carry the query
        # context to the response handler.
        self._pending: Deque[dict] = deque()

    # -- wiring -----------------------------------------------------------------

    def use_remote_store(self, switch, store: RemoteValueStore) -> None:
        self.value_store = store
        self.rocegen = RoceRequestGenerator(switch, store.channel)

    def use_server_port(self, port: int) -> None:
        """Fallback: forward misses to the storage server on *port*."""
        self.server_port = port

    # -- data plane -------------------------------------------------------------

    def on_ingress(self, ctx: PipelineContext, packet: Packet) -> None:
        if self.rocegen is not None and self.rocegen.owns_response(packet):
            self._handle_remote_value(ctx, packet)
            return
        query = self._parse_query(packet)
        if query is None:
            self.forward_by_mac(ctx, packet)
            return
        self.stats.queries += 1
        cached = self.sram.lookup(query.key)
        if cached is not None:
            self.stats.sram_hits += 1
            reply = self._make_reply(packet, query.key, cached.params["value"], hit=True)
            self._send_reply(ctx, reply)
            ctx.drop()
            return
        if self.rocegen is not None and self.value_store is not None:
            # Miss path A: fetch the value from remote memory; the switch
            # holds only the tiny query context while the READ is in
            # flight.
            self.stats.remote_fetches += 1
            self.rocegen.read(
                self.value_store.address_of(query.key), ENTRY_BYTES
            )
            self._pending.append({"query": packet, "key": query.key})
            ctx.drop()
            return
        if self.server_port is not None:
            # Miss path B (baseline): punt to the storage server's CPU.
            self.stats.server_forwards += 1
            ctx.forward(self.server_port)
            return
        ctx.drop()

    def _parse_query(self, packet: Packet) -> Optional[KvHeader]:
        udp = packet.find(UdpHeader)
        if udp is None or udp.dst_port != KV_UDP_PORT:
            return None
        try:
            header = KvHeader.unpack(packet.payload)
        except HeaderError:
            return None
        return header if header.op == KvHeader.OP_GET else None

    def _handle_remote_value(self, ctx: PipelineContext, packet: Packet) -> None:
        assert self.rocegen is not None
        opcode = self.rocegen.classify_response(packet)
        ctx.drop()
        if opcode != Opcode.RDMA_READ_RESPONSE_ONLY or self.rocegen.is_nak(packet):
            self.rocegen.maybe_resync(packet)
            if self._pending:
                self._pending.popleft()  # query lost with the fetch
            return
        pending = self._pending.popleft()
        valid, stored_key, value = unpack_entry(packet.payload)
        key = pending["key"]
        hit = valid and stored_key == normalize_key(key)
        if hit:
            self.stats.remote_hits += 1
            if self.cache_fill:
                self._fill_sram(key, value)
            reply = self._make_reply(pending["query"], key, value, hit=True)
            self._send_reply(ctx, reply)
            return
        # Bucket collision or unpopulated key: fall back to the storage
        # server if one is wired, else answer an authoritative miss.
        self.stats.remote_misses += 1
        if self.server_port is not None:
            self.stats.server_forwards += 1
            ctx.emit(pending["query"], self.server_port)
        else:
            reply = self._make_reply(
                pending["query"], key, b"\x00" * VALUE_BYTES, hit=False
            )
            self._send_reply(ctx, reply)

    def _fill_sram(self, key: bytes, value: bytes) -> None:
        if self.sram.is_full and not self.sram.contains(key):
            self.sram.evict_oldest()
            self.stats.cache_evictions += 1
        self.sram.insert(key, ActionEntry("value", {"value": value}))
        self.stats.cache_fills += 1

    def _make_reply(
        self, query: Packet, key: bytes, value: bytes, hit: bool
    ) -> Packet:
        """Craft the KV reply in the data plane (addresses swapped)."""
        eth = query.require(EthernetHeader)
        ip = query.require(Ipv4Header)
        udp = query.require(UdpHeader)
        reply = Packet(
            headers=[
                EthernetHeader(dst=eth.src, src=eth.dst),
                Ipv4Header(src=ip.dst, dst=ip.src),
                UdpHeader(src_port=KV_UDP_PORT, dst_port=udp.src_port),
            ],
            payload=KvHeader(
                op=KvHeader.OP_REPLY,
                key=normalize_key(key),
                value=value,
                hit=hit,
            ).pack(),
            meta=dict(query.meta),
        )
        reply.fixup_lengths()
        return reply

    def _send_reply(self, ctx: PipelineContext, reply: Packet) -> None:
        eth = reply.require(EthernetHeader)
        port = self.mac_to_port.get(eth.dst)
        if port is not None:
            ctx.emit(reply, port)


class KvStorageServer:
    """The software KV server (baseline miss target).

    Answers GETs after the usual software latency; its ``cpu_queries``
    counter is the load metric the remote-memory design drives to zero.
    """

    def __init__(
        self,
        host: Host,
        slow_path: CpuSlowPath,
        store: Optional[Dict[bytes, bytes]] = None,
    ) -> None:
        self.host = host
        self.slow_path = slow_path
        self.store: Dict[bytes, bytes] = dict(store or {})
        self.cpu_queries = 0
        self.dropped_queries = 0
        host.packet_handlers.append(self._handle)

    def put(self, key: bytes, value: bytes) -> None:
        self.store[normalize_key(key)] = value[:VALUE_BYTES].ljust(
            VALUE_BYTES, b"\x00"
        )

    def _handle(self, packet: Packet, interface: Interface) -> None:
        udp = packet.find(UdpHeader)
        if udp is None or udp.dst_port != KV_UDP_PORT:
            return
        try:
            header = KvHeader.unpack(packet.payload)
        except HeaderError:
            return
        if header.op != KvHeader.OP_GET:
            return
        self.cpu_queries += 1
        if not self.slow_path.submit(packet, self._reply):
            self.dropped_queries += 1

    def _reply(self, query: Packet) -> None:
        header = KvHeader.unpack(query.payload)
        key = normalize_key(header.key)
        value = self.store.get(key)
        reply = Packet(
            headers=[
                EthernetHeader(
                    dst=query.eth.src, src=self.host.eth.mac
                ),
                Ipv4Header(src=self.host.eth.ip, dst=query.ipv4.src),
                UdpHeader(
                    src_port=KV_UDP_PORT, dst_port=query.udp.src_port
                ),
            ],
            payload=KvHeader(
                op=KvHeader.OP_REPLY,
                key=key,
                value=value if value is not None else b"\x00" * VALUE_BYTES,
                hit=value is not None,
            ).pack(),
            meta=dict(query.meta),
        )
        reply.fixup_lengths()
        self.host.send(reply)
