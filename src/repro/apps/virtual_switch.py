"""Bare-metal hosting virtual switch (§2.2 / Fig. 1b).

Azure-style scenario: customers' blackbox servers talk to their VMs via
virtual IPs; the ToR must translate VIP → PIP because nothing can be
installed on the blackboxes.  The full mapping table is far larger than
switch SRAM.

Two implementations share :class:`VirtualSwitchProgram`'s translation
logic:

* **Remote-table mode** — the paper's design: the complete VIP→PIP map in
  server DRAM via the lookup-table primitive; switch SRAM acts as a cache.
* **CPU slow-path mode** — the baseline: a bounded SRAM table; misses take
  the software path with its µs-scale latency and pps ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..baselines.cpu_slowpath import CpuSlowPath
from ..core.lookup_table import (
    ACTION_SET_DST_IP,
    RemoteAction,
    RemoteLookupTable,
)
from ..net.addresses import Ipv4Address, MacAddress
from ..net.headers import EthernetHeader, Ipv4Header
from ..net.packet import Packet
from ..switches.hashing import FiveTuple
from ..switches.pipeline import PipelineContext
from ..switches.tables import ActionEntry, ExactMatchTable, TableFullError
from .programs import StaticL2Program


@dataclass(frozen=True)
class VipMapping:
    """One virtual-to-physical translation."""

    vip: Ipv4Address
    pip: Ipv4Address
    pip_mac: MacAddress
    egress_port: int


class VirtualSwitchProgram(StaticL2Program):
    """VIP→PIP translating ToR program with pluggable miss handling."""

    def __init__(self, sram_entries: int = 128) -> None:
        super().__init__()
        #: Full mapping, known only to the control plane.
        self._mappings: Dict[Ipv4Address, VipMapping] = {}
        #: Reverse index: PIP → mapping (the remote action rewrites the
        #: destination to the PIP before the egress policy runs).
        self._by_pip: Dict[Ipv4Address, VipMapping] = {}
        #: What fits in SRAM (the baseline's only fast table; in remote
        #: mode the lookup primitive's cache plays this role instead).
        self.local_table = ExactMatchTable("vswitch.sram", sram_entries)
        self.lookup_table: Optional[RemoteLookupTable] = None
        self.slow_path: Optional[CpuSlowPath] = None
        self.slow_path_translations = 0
        self.slow_path_drops = 0
        self.fast_translations = 0
        self.untranslatable_drops = 0

    # -- control plane -------------------------------------------------------------

    def add_mapping(self, mapping: VipMapping) -> None:
        """Register a VIP→PIP mapping (control plane).

        In remote mode the mapping also lands in the remote table keyed by
        destination VIP (ports zeroed: translation is per-VIP, not
        per-flow).  In baseline mode it goes to SRAM until SRAM fills.
        """
        self._mappings[mapping.vip] = mapping
        self._by_pip[mapping.pip] = mapping
        if self.lookup_table is not None:
            self.lookup_table.install(
                self._vip_flow(mapping.vip),
                RemoteAction(ACTION_SET_DST_IP, mapping.pip.value),
            )
        else:
            try:
                self.local_table.insert(
                    mapping.vip, ActionEntry("translate", {"mapping": mapping})
                )
            except TableFullError:
                # SRAM exhausted: this VIP will take the slow path forever —
                # precisely the §2.2 problem.
                pass

    @staticmethod
    def _vip_flow(vip: Ipv4Address) -> FiveTuple:
        return FiveTuple(src_ip=0, dst_ip=vip.value, protocol=17, src_port=0, dst_port=0)

    def use_remote_table(self, table: RemoteLookupTable) -> None:
        self.lookup_table = table
        table.resolve_egress = self._resolve_after_translate
        # Remote lookups key on the VIP only, so the index hash must too.
        table.flow_of = self._lookup_key

    def use_slow_path(self, slow_path: CpuSlowPath) -> None:
        self.slow_path = slow_path

    # -- data plane -----------------------------------------------------------------

    def _lookup_key(self, packet: Packet) -> FiveTuple:
        return self._vip_flow(packet.require(Ipv4Header).dst)

    def _finish_translation(self, packet: Packet, mapping: VipMapping) -> None:
        packet.require(Ipv4Header).dst = mapping.pip
        packet.require(EthernetHeader).dst = mapping.pip_mac

    def _resolve_after_translate(
        self, packet: Packet, action: RemoteAction
    ) -> Optional[int]:
        """Egress policy for remote mode: the action already rewrote the
        dst IP; finish with the MAC/port from the mapping."""
        if action.action_id != ACTION_SET_DST_IP:
            self.untranslatable_drops += 1
            return None
        # The action already rewrote dst to the PIP; finish via the reverse
        # index (on hardware the action params carry MAC + port as well).
        mapping = self._by_pip.get(packet.require(Ipv4Header).dst)
        if mapping is None:
            self.untranslatable_drops += 1
            return None
        packet.require(EthernetHeader).dst = mapping.pip_mac
        self.fast_translations += 1
        return mapping.egress_port

    def on_ingress(self, ctx: PipelineContext, packet: Packet) -> None:
        if self.lookup_table is not None and self.lookup_table.try_handle(
            ctx, packet
        ):
            return
        ip = packet.find(Ipv4Header)
        if ip is None:
            ctx.drop()
            return
        if ip.dst not in self._mappings:
            # Not VIP traffic; ordinary L2 forwarding.
            self.forward_by_mac(ctx, packet)
            return
        if self.lookup_table is not None:
            # Cache hits resolve synchronously; misses bounce and resume on
            # the response path.  Either way _resolve_after_translate does
            # the accounting.
            self.lookup_table.lookup(ctx, packet)
            return
        entry = self.local_table.lookup(ip.dst)
        if entry is not None:
            mapping = entry.params["mapping"]
            self._finish_translation(packet, mapping)
            self.fast_translations += 1
            ctx.forward(mapping.egress_port)
            return
        # SRAM miss: CPU slow path (or drop if none configured).
        if self.slow_path is None:
            self.untranslatable_drops += 1
            ctx.drop()
            return
        ctx.drop()  # pipeline releases the packet; software re-injects it
        accepted = self.slow_path.submit(packet, self._slow_path_deliver)
        if not accepted:
            self.slow_path_drops += 1

    def _slow_path_deliver(self, packet: Packet) -> None:
        mapping = self._mappings.get(packet.require(Ipv4Header).dst)
        if mapping is None:
            self.slow_path_drops += 1
            return
        self._finish_translation(packet, mapping)
        self.slow_path_translations += 1
        self.switch.transmit(packet, mapping.egress_port)
