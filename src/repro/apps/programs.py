"""Composite data-plane programs combining forwarding with the primitives.

These are the Python analogues of the paper's "testing data plane
programs" (§5): small P4 programs that wire a primitive into an otherwise
ordinary forwarding pipeline.  They are also the integration points the
example applications and every benchmark harness reuse.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..core.lookup_table import RemoteAction, RemoteLookupTable
from ..core.packet_buffer import RemotePacketBuffer
from ..core.state_store import RemoteStateStore
from ..net.addresses import MacAddress
from ..net.headers import EthernetHeader
from ..net.packet import Packet
from ..switches.pipeline import PipelineContext, SwitchProgram


class StaticL2Program(SwitchProgram):
    """Forwarding from a statically-installed MAC → port map.

    Used instead of a learning switch in latency experiments so that no
    flooding perturbs measurements (the paper pre-configures forwarding in
    its microbenchmarks).
    """

    def __init__(self, mac_to_port: Optional[Dict[MacAddress, int]] = None) -> None:
        self.mac_to_port: Dict[MacAddress, int] = dict(mac_to_port or {})

    def install(self, mac: MacAddress, port: int) -> None:
        self.mac_to_port[MacAddress(mac)] = port

    def forward_by_mac(self, ctx: PipelineContext, packet: Packet) -> None:
        eth = packet.find(EthernetHeader)
        if eth is None:
            ctx.drop()
            return
        port = self.mac_to_port.get(eth.dst)
        if port is None:
            ctx.drop()
        else:
            ctx.forward(port)

    def on_ingress(self, ctx: PipelineContext, packet: Packet) -> None:
        self.forward_by_mac(ctx, packet)


class RemoteBufferProgram(StaticL2Program):
    """Static L2 forwarding with a remote packet buffer on one egress port.

    The primitive hooks the traffic manager directly; the program's only
    extra duty is steering the primitive's RoCE responses back to it.
    """

    def __init__(self, mac_to_port=None) -> None:
        super().__init__(mac_to_port)
        self.packet_buffer: Optional[RemotePacketBuffer] = None

    def use_packet_buffer(self, primitive: RemotePacketBuffer) -> None:
        self.packet_buffer = primitive

    def on_ingress(self, ctx: PipelineContext, packet: Packet) -> None:
        if self.packet_buffer is not None and self.packet_buffer.try_handle(
            ctx, packet
        ):
            return
        self.forward_by_mac(ctx, packet)


class RemoteLookupProgram(StaticL2Program):
    """§5's lookup-table test program.

    Every incoming (non-RoCE) packet resolves its action through the
    remote lookup table (local cache first); the paper's example action
    rewrites the IPv4 DSCP field.  Forwarding still comes from the static
    L2 map, supplied to the primitive as its egress-resolution policy.
    """

    def __init__(self, mac_to_port=None) -> None:
        super().__init__(mac_to_port)
        self.lookup_table: Optional[RemoteLookupTable] = None
        #: Which packets consult the remote table; everything else is
        #: plainly L2-forwarded.  Default: every IPv4 packet (the paper's
        #: test program fetches "for every incoming packet").
        self.lookup_filter: Callable[[Packet], bool] = lambda packet: True

    def use_lookup_table(self, primitive: RemoteLookupTable) -> None:
        self.lookup_table = primitive
        primitive.resolve_egress = self._resolve_egress

    def _resolve_egress(self, packet: Packet, action: RemoteAction) -> Optional[int]:
        eth = packet.find(EthernetHeader)
        if eth is None:
            return None
        return self.mac_to_port.get(eth.dst)

    def on_ingress(self, ctx: PipelineContext, packet: Packet) -> None:
        table = self.lookup_table
        if table is None:
            self.forward_by_mac(ctx, packet)
            return
        if table.try_handle(ctx, packet):
            return
        if not self.lookup_filter(packet):
            self.forward_by_mac(ctx, packet)
            return
        # lookup() applies cached actions synchronously (and forwards via
        # resolve_egress); on a miss the packet is bounced and the response
        # path finishes the job.
        table.lookup(ctx, packet)


class CountingProgram(StaticL2Program):
    """§5's state-store test program: count packets between end hosts.

    Original packets are forwarded unchanged; a cloned-and-truncated
    Fetch-and-Add updates the remote per-flow counter.
    """

    def __init__(self, mac_to_port=None) -> None:
        super().__init__(mac_to_port)
        self.state_store: Optional[RemoteStateStore] = None

    def use_state_store(self, primitive: RemoteStateStore) -> None:
        self.state_store = primitive

    def on_ingress(self, ctx: PipelineContext, packet: Packet) -> None:
        store = self.state_store
        if store is not None and store.try_handle(ctx, packet):
            return
        self.forward_by_mac(ctx, packet)
        if store is not None and not ctx.dropped:
            store.on_packet(ctx, packet)
