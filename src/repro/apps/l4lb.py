"""L4 load balancer with live backend migration (ROADMAP production scenario).

The paper's pitch is a switch hosting state far beyond SRAM; the classic
production shape of that claim is an L4 load balancer whose connection
table lives in external memory.  This module composes every subsystem
PRs 1-9 built into that one application:

* **Connection table** — the cuckoo :class:`~repro.core.lookup_table.
  RemoteLookupTable` (EMOMA layout, one READ per miss) maps the client's
  5-tuple (dst = the VIP) to a backend's PIP via ``ACTION_SET_DST_IP``;
  switch SRAM acts as the hot-connection cache.
* **Per-backend counters** — a K-way
  :class:`~repro.cluster.replicated_store.ReplicatedStateStore` holds
  active-connection and byte counters per backend, both monotone, so the
  cluster layer's max-reconciliation rule applies.
* **Control plane** — :class:`L4LbController` owns placement (rendezvous
  hashing over the active backends), *graceful drain* (journaled
  re-install of every moved connection, then a quiesce + handoff
  reconcile under a :meth:`~repro.cluster.pool.MemoryPool.hold_for_drain`
  window), and *hard kills* (the §11 self-healing stack detects the dead
  member — breaker trip → degrade → reconnect probes — and escalates to
  pool failover once probes keep failing).

Affinity contract: an **established** connection only ever reaches the
backends its journal sanctions — its original placement plus any
controller-ordered migration targets.  New connections may land anywhere
active.  The soak in :mod:`repro.experiments.l4lb` asserts both halves
under a combined kill + drain + link-corruption schedule.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..cluster.pool import MemoryPool, PoolMember
from ..cluster.replicated_store import ReplicatedStateStore
from ..core.lookup_table import (
    ACTION_SET_DST_IP,
    RemoteAction,
    RemoteLookupTable,
)
from ..net.addresses import Ipv4Address, MacAddress
from ..net.headers import EthernetHeader, Ipv4Header
from ..net.packet import Packet
from ..resilience.guard import SelfHealingChannel
from ..switches.hashing import FiveTuple
from ..switches.pipeline import PipelineContext
from .programs import StaticL2Program

#: Backend lifecycle states (stringly-typed: they appear in journals and
#: metric snapshots verbatim).
BACKEND_ACTIVE = "active"
BACKEND_DRAINING = "draining"
BACKEND_DEAD = "dead"
BACKEND_RETIRED = "retired"


@dataclass
class Backend:
    """One load-balanced backend and its counter slots."""

    name: str
    pip: Ipv4Address
    mac: MacAddress
    port: int
    #: Pool member hosting this backend's counter-replica channel (the
    #: backends double as memory servers in the reference topology);
    #: None for a pure traffic sink.
    member: Optional[str] = None
    #: Counter slot: ``2*slot`` = active connections, ``2*slot+1`` = bytes.
    slot: int = 0
    state: str = BACKEND_ACTIVE

    @property
    def conns_index(self) -> int:
        return 2 * self.slot

    @property
    def bytes_index(self) -> int:
        return 2 * self.slot + 1

    @property
    def action(self) -> RemoteAction:
        """The remote-table action that steers a connection here."""
        return RemoteAction(ACTION_SET_DST_IP, self.pip.value)


@dataclass(frozen=True)
class MigrationRecord:
    """One journal entry: a connection re-pointed between backends."""

    time_ns: float
    flow: FiveTuple
    source: str
    target: str
    #: "drain" (controller-ordered graceful move) or "kill" (failover).
    reason: str


@dataclass
class L4LbStats:
    """Control-plane counters for one controller's lifetime."""

    connections_admitted: int = 0
    connections_migrated: int = 0
    drains_started: int = 0
    drains_completed: int = 0
    #: Drains that hit their deadline before the store quiesced.
    drains_forced: int = 0
    kills_detected: int = 0
    #: Breaker probe give-ups escalated to pool failover.
    kill_escalations: int = 0
    #: Flows that could not be re-pointed (no active backend left).
    flows_stranded: int = 0


class L4LbProgram(StaticL2Program):
    """VIP-terminating data plane: connection table + per-backend counters.

    Non-VIP traffic takes ordinary L2 forwarding.  VIP traffic looks up
    the remote connection table; the installed action rewrites the dst IP
    to the chosen backend's PIP, and the egress policy finishes the job —
    MAC rewrite, port selection, and the two counter updates (first
    packet of a connection bumps the backend's connection counter; every
    packet adds to its byte counter).

    The program keeps an **expected-counts ledger** mirroring every
    update it hands the replicated store.  The ledger is the independent
    "ground truth" side of the soak's zero-lost-updates audit: after a
    quiesce, ``store.read_counter(i)`` must equal ``expected_counts[i]``
    for every index, through kills, drains, and link corruption.
    """

    def __init__(self, vip) -> None:
        super().__init__()
        self.vip = vip if isinstance(vip, Ipv4Address) else Ipv4Address(vip)
        self.connection_table: Optional[RemoteLookupTable] = None
        self.counter_store: Optional[ReplicatedStateStore] = None
        #: Reverse index the egress policy resolves through (the remote
        #: action already rewrote dst to the PIP).
        self.backends_by_pip: Dict[Ipv4Address, Backend] = {}
        #: Ground truth for the audit: index -> total value handed to the
        #: store (same fan-out-independent space the store reads back).
        self.expected_counts: Dict[int, int] = {}
        self.vip_packets = 0
        self.forwarded_packets = 0
        self.forwarded_by_backend: Dict[str, int] = {}
        #: VIP packets whose lookup resolved to no usable backend
        #: (default action, or a PIP no registered backend owns).
        self.no_backend_drops = 0
        self._counted: Set[Tuple[FiveTuple, str]] = set()

    # -- wiring (control plane) ---------------------------------------------------

    def use_connection_table(self, table: RemoteLookupTable) -> None:
        self.connection_table = table
        table.resolve_egress = self._resolve_backend

    def use_counter_store(self, store: ReplicatedStateStore) -> None:
        self.counter_store = store

    def register_backend(self, backend: Backend) -> None:
        self.backends_by_pip[backend.pip] = backend

    # -- data plane ---------------------------------------------------------------

    def connection_key(self, packet: Packet) -> FiveTuple:
        """The packet's connection 5-tuple, as the *client* addressed it.

        Post-translation packets carry the backend PIP in dst; the
        connection identity always uses the VIP.
        """
        flow = FiveTuple.of(packet)
        if flow.dst_ip == self.vip.value:
            return flow
        return replace(flow, dst_ip=self.vip.value)

    def on_ingress(self, ctx: PipelineContext, packet: Packet) -> None:
        table = self.connection_table
        if table is not None and table.try_handle(ctx, packet):
            return
        store = self.counter_store
        if store is not None and store.try_handle(ctx, packet):
            return
        ip = packet.find(Ipv4Header)
        if ip is not None and ip.dst == self.vip and table is not None:
            self.vip_packets += 1
            # Cache hits resolve synchronously; misses bounce off the
            # table server and resume in _resolve_backend either way.
            table.lookup(ctx, packet)
            return
        self.forward_by_mac(ctx, packet)

    def _resolve_backend(
        self, packet: Packet, action: RemoteAction
    ) -> Optional[int]:
        """Egress policy: finish the translation and do the accounting."""
        if action.action_id != ACTION_SET_DST_IP:
            self.no_backend_drops += 1
            return None
        backend = self.backends_by_pip.get(packet.require(Ipv4Header).dst)
        if backend is None:
            self.no_backend_drops += 1
            return None
        packet.require(EthernetHeader).dst = backend.mac
        self.forwarded_packets += 1
        self.forwarded_by_backend[backend.name] = (
            self.forwarded_by_backend.get(backend.name, 0) + 1
        )
        self._count(packet, backend)
        return backend.port

    def _count(self, packet: Packet, backend: Backend) -> None:
        if self.counter_store is None:
            return
        key = (self.connection_key(packet), backend.name)
        if key not in self._counted:
            # First packet of this connection on this backend: one more
            # active connection.  Monotone by construction (a migrated
            # connection counts on both backends; neither ever decrements)
            # so the replicated store's max-reconciliation rule holds.
            self._counted.add(key)
            self._record(backend.conns_index, 1)
        self._record(backend.bytes_index, packet.buffer_len)

    def _record(self, index: int, value: int) -> None:
        self.expected_counts[index] = self.expected_counts.get(index, 0) + value
        self.counter_store.update(index, value)


class L4LbController:
    """Control plane: placement, graceful drain, and kill absorption.

    Registers itself as a :class:`~repro.cluster.pool.PoolListener`, so
    membership changes — whether controller-ordered (drain) or declared
    by health/escalation (kill) — flow back into backend state and
    connection re-placement.
    """

    def __init__(
        self,
        program: L4LbProgram,
        table: RemoteLookupTable,
        store: ReplicatedStateStore,
        pool: MemoryPool,
        seed: int = 0,
        drain_poll_ns: float = 10_000.0,
        drain_timeout_ns: float = 2_000_000.0,
    ) -> None:
        self.program = program
        self.table = table
        self.store = store
        self.pool = pool
        self.sim = pool.controller.switch.sim
        self.drain_poll_ns = drain_poll_ns
        self.drain_timeout_ns = drain_timeout_ns
        self._salt = struct.pack("!I", seed & 0xFFFFFFFF)
        self.backends: Dict[str, Backend] = {}
        #: Current backend per established connection.
        self.placement: Dict[FiveTuple, str] = {}
        #: Full assignment history, kept only for migrated connections
        #: (the common case — never migrated — stays out of memory).
        self._history: Dict[FiveTuple, List[str]] = {}
        self.flows_by_backend: Dict[str, Set[FiveTuple]] = {}
        #: Journal of every re-install (the drain/kill audit trail).
        self.journal: List[MigrationRecord] = []
        self.healers: Dict[str, SelfHealingChannel] = {}
        self.stats = L4LbStats()
        pool.listeners.append(self)

    # -- backends -----------------------------------------------------------------

    def add_backend(
        self,
        name: str,
        pip,
        mac,
        port: int,
        member: Optional[PoolMember] = None,
    ) -> Backend:
        if name in self.backends:
            raise ValueError(f"backend {name!r} already registered")
        slot = len(self.backends)
        limit = self.store.config.counters
        if 2 * slot + 1 >= limit:
            raise ValueError(
                f"store has {limit} counters; backend slot {slot} needs "
                f"indices {2 * slot}..{2 * slot + 1}"
            )
        backend = Backend(
            name=name,
            pip=pip if isinstance(pip, Ipv4Address) else Ipv4Address(pip),
            mac=mac if isinstance(mac, MacAddress) else MacAddress(mac),
            port=port,
            member=member.name if member is not None else None,
            slot=slot,
        )
        self.backends[name] = backend
        self.flows_by_backend[name] = set()
        self.program.register_backend(backend)
        return backend

    @property
    def active_backends(self) -> List[Backend]:
        return [b for b in self.backends.values() if b.state == BACKEND_ACTIVE]

    def _backend_for_member(self, member_name: str) -> Optional[Backend]:
        for backend in self.backends.values():
            if backend.member == member_name:
                return backend
        return None

    # -- placement ----------------------------------------------------------------

    def place(self, flow: FiveTuple) -> Optional[Backend]:
        """Rendezvous-hash *flow* over the active backends (deterministic)."""
        packed = flow.pack()
        best: Optional[Backend] = None
        best_score: Tuple[int, str] = (-1, "")
        for backend in self.backends.values():
            if backend.state != BACKEND_ACTIVE:
                continue
            score = (
                zlib.crc32(packed + backend.name.encode() + self._salt),
                backend.name,
            )
            if best is None or score > best_score:
                best, best_score = backend, score
        return best

    def admit(self, flow: FiveTuple) -> Optional[Backend]:
        """Install *flow*'s connection-table entry (idempotent)."""
        current = self.placement.get(flow)
        if current is not None:
            return self.backends[current]
        backend = self.place(flow)
        if backend is None:
            return None
        self.table.install(flow, backend.action)
        self.placement[flow] = backend.name
        self.flows_by_backend[backend.name].add(flow)
        self.stats.connections_admitted += 1
        return backend

    def assignment_history(self, flow: FiveTuple) -> List[str]:
        """Every backend this connection was ever sanctioned to reach."""
        history = self._history.get(flow)
        if history is not None:
            return list(history)
        current = self.placement.get(flow)
        return [current] if current is not None else []

    def migrate(self, flow: FiveTuple, target: Backend, reason: str) -> None:
        """Journaled re-install: re-point *flow* at *target* live.

        Rewrites the remote entry in place and refreshes any SRAM-cached
        copy, so in-flight packets flip to the new backend at the install
        instant — no entry ever disappears mid-migration.
        """
        source = self.placement.get(flow)
        self.table.install(flow, target.action)
        cache = self.table.cache
        if cache is not None and cache.contains(flow):
            cache.admit(flow, target.action)
        history = self._history.get(flow)
        if history is None:
            history = [source] if source is not None else []
            self._history[flow] = history
        history.append(target.name)
        if source is not None:
            self.flows_by_backend[source].discard(flow)
        self.placement[flow] = target.name
        self.flows_by_backend[target.name].add(flow)
        self.journal.append(
            MigrationRecord(
                time_ns=self.sim.now,
                flow=flow,
                source=source if source is not None else "",
                target=target.name,
                reason=reason,
            )
        )
        self.stats.connections_migrated += 1

    def _repoint(self, backend: Backend, reason: str) -> int:
        """Move every connection off *backend* (it is no longer active)."""
        moved = 0
        for flow in list(self.flows_by_backend[backend.name]):
            target = self.place(flow)
            if target is None:
                self.stats.flows_stranded += 1
                continue
            self.migrate(flow, target, reason)
            moved += 1
        return moved

    # -- graceful drain -----------------------------------------------------------

    def drain_backend(self, name: str) -> Backend:
        """Begin a graceful drain: migrate, quiesce, hand off, leave.

        The backend stops taking new placements immediately and its
        established connections re-install elsewhere right away.  Its
        pool member then leaves under a drain hold: the controller polls
        until the replicated store has nothing in flight (or the deadline
        passes), runs a *handoff reconcile* while the leaver's replicas
        are still consulted as authoritative sources, and only then
        removes the member and releases the hold — which is what finally
        closes the channels.  Skipping the handoff loses any counter
        value whose only surviving copy sat on the leaver (the co-replica
        having died earlier); the soak exercises exactly that order.
        """
        backend = self.backends[name]
        if backend.state != BACKEND_ACTIVE:
            raise ValueError(f"backend {name!r} is {backend.state}, not active")
        backend.state = BACKEND_DRAINING
        self.stats.drains_started += 1
        self._repoint(backend, reason="drain")
        member = (
            self.pool.members.get(backend.member)
            if backend.member is not None
            else None
        )
        if member is None or not member.alive:
            backend.state = BACKEND_RETIRED
            self.stats.drains_completed += 1
            return backend
        self.pool.hold_for_drain(member)
        deadline = self.sim.now + self.drain_timeout_ns
        self._drain_poll(backend, member, deadline)
        return backend

    def _drain_poll(
        self, backend: Backend, member: PoolMember, deadline: float
    ) -> None:
        store = self.store
        quiesced = store.outstanding == 0 and store.pending_value == 0
        if not quiesced and self.sim.now < deadline:
            store.flush_all()
            self.sim.schedule(
                self.drain_poll_ns, self._drain_poll, backend, member, deadline
            )
            return
        if not quiesced:
            self.stats.drains_forced += 1
        # Handoff reconcile *before* the ring change: the leaver is still
        # a consulted replica, so its (now durable) values copy onto the
        # members that take over its arcs.
        store.reconcile()
        self.pool.remove_server(member.name)
        self.pool.release_drain(member)
        backend.state = BACKEND_RETIRED
        self.stats.drains_completed += 1

    # -- kill absorption (§11 self-healing) ----------------------------------------

    def enable_self_healing(
        self,
        policy_for: Optional[Callable[[PoolMember], object]] = None,
        give_up_probes: int = 2,
    ) -> Dict[str, SelfHealingChannel]:
        """Guard every backend's counter channel with a breaker.

        ``policy_for(member)`` supplies each member's
        :class:`~repro.policies.breaker.BreakerPolicy` (thresholds +
        seeded probe jitter).  A tripped breaker degrades the replica
        store (updates accumulate locally; the surviving replica keeps
        the truth); half-open reconnects and probes.  Once
        ``give_up_probes`` probes fail in a row the controller stops
        hoping and escalates: the member is declared dead, the pool fails
        it over, and this controller re-points the backend's connections.
        """
        for backend in self.backends.values():
            member_name = backend.member
            if member_name is None or member_name not in self.store.stores:
                continue
            member = self.pool.member(member_name)
            store = self.store.stores[member_name]
            kwargs = {}
            if policy_for is not None:
                kwargs["policy"] = policy_for(member)
            healer = SelfHealingChannel(
                self.pool.controller, store.channel, store, **kwargs
            )
            healer.breaker.on_open.append(
                self._escalator(member_name, give_up_probes)
            )
            self.healers[member_name] = healer
        return dict(self.healers)

    def _escalator(
        self, member_name: str, give_up_probes: int
    ) -> Callable[[object], None]:
        def escalate(breaker) -> None:
            if breaker.probe_failures < give_up_probes:
                return
            member = self.pool.members.get(member_name)
            if member is None or not member.alive:
                return
            self.stats.kill_escalations += 1
            self.pool.fail_server(member_name)

        return escalate

    # -- PoolListener -------------------------------------------------------------

    def on_member_join(self, member: PoolMember) -> None:
        pass

    def on_member_leave(self, member: PoolMember, graceful: bool) -> None:
        healer = self.healers.pop(member.name, None)
        if healer is not None:
            # A dead member's breaker would otherwise probe forever;
            # stand the whole guard down (terminal).
            healer.stop()
        backend = self._backend_for_member(member.name)
        if backend is None:
            return
        if graceful:
            if backend.state == BACKEND_ACTIVE:
                backend.state = BACKEND_RETIRED
        else:
            backend.state = BACKEND_DEAD
            self.stats.kills_detected += 1
        self._repoint(backend, reason="drain" if graceful else "kill")

    def __repr__(self) -> str:
        active = len(self.active_backends)
        return (
            f"<L4LbController {active}/{len(self.backends)} backends active, "
            f"{len(self.placement)} connections>"
        )
