"""Motivating applications (§2) and the composite data-plane programs."""

from .kv_cache import (
    KvCacheProgram,
    KvHeader,
    KvStorageServer,
    RemoteValueStore,
)
from .l4lb import (
    BACKEND_ACTIVE,
    BACKEND_DEAD,
    BACKEND_DRAINING,
    BACKEND_RETIRED,
    Backend,
    L4LbController,
    L4LbProgram,
    L4LbStats,
    MigrationRecord,
)
from .sequencer import SEQUENCER_PORT, SeqHeader, SequencerProgram
from .programs import (
    CountingProgram,
    RemoteBufferProgram,
    RemoteLookupProgram,
    StaticL2Program,
)
from .sketch import (
    CountMinSketch,
    CountSketch,
    LocalCounterBackend,
    RemoteCounterBackend,
    SketchGeometry,
)
from .telemetry import (
    HeavyHitterDetector,
    HeavyHitterReport,
    SketchTelemetryProgram,
    mean_relative_error,
)
from .virtual_switch import VipMapping, VirtualSwitchProgram

__all__ = [
    "BACKEND_ACTIVE",
    "BACKEND_DEAD",
    "BACKEND_DRAINING",
    "BACKEND_RETIRED",
    "Backend",
    "CountMinSketch",
    "CountSketch",
    "CountingProgram",
    "HeavyHitterDetector",
    "HeavyHitterReport",
    "KvCacheProgram",
    "KvHeader",
    "KvStorageServer",
    "L4LbController",
    "L4LbProgram",
    "L4LbStats",
    "LocalCounterBackend",
    "MigrationRecord",
    "RemoteBufferProgram",
    "RemoteCounterBackend",
    "RemoteLookupProgram",
    "RemoteValueStore",
    "SEQUENCER_PORT",
    "SeqHeader",
    "SequencerProgram",
    "SketchGeometry",
    "SketchTelemetryProgram",
    "StaticL2Program",
    "VipMapping",
    "VirtualSwitchProgram",
    "mean_relative_error",
]
