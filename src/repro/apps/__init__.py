"""Motivating applications (§2) and the composite data-plane programs."""

from .kv_cache import (
    KvCacheProgram,
    KvHeader,
    KvStorageServer,
    RemoteValueStore,
)
from .sequencer import SEQUENCER_PORT, SeqHeader, SequencerProgram
from .programs import (
    CountingProgram,
    RemoteBufferProgram,
    RemoteLookupProgram,
    StaticL2Program,
)
from .sketch import (
    CountMinSketch,
    CountSketch,
    LocalCounterBackend,
    RemoteCounterBackend,
    SketchGeometry,
)
from .telemetry import (
    HeavyHitterDetector,
    HeavyHitterReport,
    SketchTelemetryProgram,
    mean_relative_error,
)
from .virtual_switch import VipMapping, VirtualSwitchProgram

__all__ = [
    "CountMinSketch",
    "CountSketch",
    "CountingProgram",
    "HeavyHitterDetector",
    "HeavyHitterReport",
    "KvCacheProgram",
    "KvHeader",
    "KvStorageServer",
    "LocalCounterBackend",
    "RemoteBufferProgram",
    "RemoteCounterBackend",
    "RemoteLookupProgram",
    "RemoteValueStore",
    "SEQUENCER_PORT",
    "SeqHeader",
    "SequencerProgram",
    "SketchGeometry",
    "SketchTelemetryProgram",
    "StaticL2Program",
    "VipMapping",
    "VirtualSwitchProgram",
    "mean_relative_error",
]
