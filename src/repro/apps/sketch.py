"""Sketches for data-plane telemetry (§2.3).

Count-Min Sketch and Count Sketch [11] over pluggable counter backends:

* :class:`LocalCounterBackend` — register arrays in switch SRAM, with the
  hard capacity budget that motivates the paper ("the limited memory space
  either directly determines the performance, like sketch systems").
* :class:`RemoteCounterBackend` — counters in remote DRAM, updated through
  the state-store primitive's Fetch-and-Add machinery (pacing, batching),
  read back by the control plane for estimation.

The estimation math is identical across backends, so experiments isolate
exactly what the paper argues: more memory (remote DRAM) → wider sketch →
lower error, at zero CPU and bounded link overhead.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Protocol

from ..core.state_store import RemoteStateStore
from ..switches.hashing import crc32
from ..switches.registers import RegisterArray

_SIGN_BIT = 1 << 63
_U64 = 1 << 64


def _to_signed(value: int) -> int:
    """Interpret a 64-bit counter as two's-complement signed."""
    value %= _U64
    return value - _U64 if value >= _SIGN_BIT else value


class CounterBackend(Protocol):
    """Where sketch counters live and how they are updated/read."""

    def add(self, row: int, index: int, value: int) -> None: ...

    def read(self, row: int, index: int) -> int: ...


class LocalCounterBackend:
    """Sketch rows in switch SRAM register arrays, under a byte budget."""

    def __init__(self, depth: int, width: int, sram_budget_bytes: int) -> None:
        needed = depth * width * 8
        if needed > sram_budget_bytes:
            raise MemoryError(
                f"sketch of {depth}x{width} needs {needed} B, SRAM budget "
                f"is {sram_budget_bytes} B"
            )
        self.depth = depth
        self.width = width
        self._rows: List[RegisterArray] = [
            RegisterArray(f"sketch.row{r}", width, width_bits=64)
            for r in range(depth)
        ]

    def add(self, row: int, index: int, value: int) -> None:
        self._rows[row].add(index, value)

    def read(self, row: int, index: int) -> int:
        return self._rows[row].read(index)


class RemoteCounterBackend:
    """Sketch rows in remote DRAM via the state-store primitive.

    Row r's counter i maps to state-store index ``r * width + i``.  Reads
    go through the control plane (estimation runs there, per §4).
    """

    def __init__(self, store: RemoteStateStore, depth: int, width: int) -> None:
        if depth * width > store.config.counters:
            raise MemoryError(
                f"sketch of {depth}x{width} needs {depth * width} counters, "
                f"store has {store.config.counters}"
            )
        self.store = store
        self.depth = depth
        self.width = width

    def add(self, row: int, index: int, value: int) -> None:
        self.store.update(row * self.width + index, value)

    def read(self, row: int, index: int) -> int:
        return self.store.read_counter_via_control_plane(
            row * self.width + index
        )


def _row_hash(row: int, key: bytes, width: int) -> int:
    return crc32(struct.pack("!I", 0x9E3779B9 * (row + 1) & 0xFFFFFFFF) + key) % width


def _row_sign(row: int, key: bytes) -> int:
    digest = crc32(struct.pack("!I", 0x85EBCA6B * (row + 1) & 0xFFFFFFFF) + key)
    return 1 if digest & 1 else -1


@dataclass
class SketchGeometry:
    """depth = number of rows, width = counters per row."""

    depth: int
    width: int

    def __post_init__(self) -> None:
        if self.depth <= 0 or self.width <= 0:
            raise ValueError(f"invalid sketch geometry {self.depth}x{self.width}")

    @property
    def counters(self) -> int:
        return self.depth * self.width

    @property
    def bytes(self) -> int:
        return self.counters * 8


class CountMinSketch:
    """Classic Count-Min: overcounts only, error ≤ e·N/width w.h.p."""

    def __init__(self, geometry: SketchGeometry, backend: CounterBackend) -> None:
        self.geometry = geometry
        self.backend = backend
        self.items_added = 0

    def add(self, key: bytes, value: int = 1) -> None:
        if value < 0:
            raise ValueError("Count-Min supports non-negative updates only")
        self.items_added += value
        for row in range(self.geometry.depth):
            index = _row_hash(row, key, self.geometry.width)
            self.backend.add(row, index, value)

    def estimate(self, key: bytes) -> int:
        return min(
            self.backend.read(row, _row_hash(row, key, self.geometry.width))
            for row in range(self.geometry.depth)
        )


class CountSketch:
    """Count Sketch [11]: signed updates, unbiased median estimator."""

    def __init__(self, geometry: SketchGeometry, backend: CounterBackend) -> None:
        self.geometry = geometry
        self.backend = backend
        self.items_added = 0

    def add(self, key: bytes, value: int = 1) -> None:
        self.items_added += abs(value)
        for row in range(self.geometry.depth):
            index = _row_hash(row, key, self.geometry.width)
            self.backend.add(row, index, _row_sign(row, key) * value)

    def estimate(self, key: bytes) -> int:
        estimates = sorted(
            _row_sign(row, key)
            * _to_signed(
                self.backend.read(row, _row_hash(row, key, self.geometry.width))
            )
            for row in range(self.geometry.depth)
        )
        mid = len(estimates) // 2
        if len(estimates) % 2:
            return estimates[mid]
        return (estimates[mid - 1] + estimates[mid]) // 2
