"""Network telemetry over the state store (§2.3 / Fig. 1c).

Two pieces:

* :class:`SketchTelemetryProgram` — a data-plane program that forwards
  traffic while feeding every packet into a sketch (local-SRAM or remote
  backend), the paper's "running multiple sketching algorithms" scenario.
* :class:`HeavyHitterDetector` — the control-plane estimation pass (§4:
  "network operators can run any estimation algorithms, e.g. heavy-hitter
  detection, on the remote counter").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.state_store import RemoteStateStore
from ..net.packet import Packet
from ..switches.hashing import FiveTuple
from ..switches.pipeline import PipelineContext
from .programs import StaticL2Program
from .sketch import CountMinSketch


class SketchTelemetryProgram(StaticL2Program):
    """Static L2 forwarding + per-packet sketch updates.

    When the sketch uses a remote backend, the program also steers the
    state store's atomic acknowledgements back to it.
    """

    def __init__(self, mac_to_port=None) -> None:
        super().__init__(mac_to_port)
        self.sketch: Optional[CountMinSketch] = None
        self.state_store: Optional[RemoteStateStore] = None

    def use_sketch(
        self,
        sketch: CountMinSketch,
        state_store: Optional[RemoteStateStore] = None,
    ) -> None:
        self.sketch = sketch
        self.state_store = state_store

    def on_ingress(self, ctx: PipelineContext, packet: Packet) -> None:
        if self.state_store is not None and self.state_store.try_handle(
            ctx, packet
        ):
            return
        self.forward_by_mac(ctx, packet)
        if self.sketch is not None and not ctx.dropped:
            self.sketch.add(FiveTuple.of(packet).pack())


@dataclass
class HeavyHitterReport:
    """Detection quality against ground truth."""

    threshold: int
    detected: Set[int]
    truth: Set[int]

    @property
    def true_positives(self) -> int:
        return len(self.detected & self.truth)

    @property
    def precision(self) -> float:
        return self.true_positives / len(self.detected) if self.detected else 1.0

    @property
    def recall(self) -> float:
        return self.true_positives / len(self.truth) if self.truth else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


class HeavyHitterDetector:
    """Control-plane heavy-hitter detection over a sketch."""

    def __init__(self, sketch: CountMinSketch) -> None:
        self.sketch = sketch

    def estimate_flow(self, flow_key: bytes) -> int:
        return self.sketch.estimate(flow_key)

    def detect(
        self,
        candidate_flows: Dict[int, bytes],
        threshold: int,
        truth_counts: Dict[int, int],
    ) -> HeavyHitterReport:
        """Classify each candidate flow by its sketch estimate.

        ``candidate_flows`` maps a flow id to its packed key;
        ``truth_counts`` maps flow ids to true packet counts.
        """
        detected = {
            flow_id
            for flow_id, key in candidate_flows.items()
            if self.sketch.estimate(key) >= threshold
        }
        truth = {
            flow_id
            for flow_id, count in truth_counts.items()
            if count >= threshold
        }
        return HeavyHitterReport(threshold=threshold, detected=detected, truth=truth)


def mean_relative_error(
    estimates: Iterable[Tuple[int, int]]
) -> float:
    """Mean relative error over (estimate, truth) pairs with truth > 0."""
    errors: List[float] = []
    for estimate, truth in estimates:
        if truth > 0:
            errors.append(abs(estimate - truth) / truth)
    if not errors:
        raise ValueError("no flows with positive truth count")
    return sum(errors) / len(errors)
