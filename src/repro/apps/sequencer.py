"""An in-network sequencer over remote memory (§6).

The paper's related work points at switch-based sequencers ("Just Say No
to Paxos Overhead" [22]): a switch that stamps a gap-free, totally-ordered
sequence number onto designated packets.  On-switch sequencers keep the
counter in a register — fast, but lost on switch failure and bounded by
one switch.  With remote memory the counter lives in server DRAM and is
advanced by RDMA Fetch-and-Add, whose *atomic acknowledgement carries the
pre-add value* — exactly the sequence number to stamp.

Data-plane flow per eligible packet:

1. park the packet in a FIFO (order = arrival order),
2. issue ``Fetch-and-Add(counter, 1)`` (bounded outstanding window),
3. on the atomic ACK, pop the FIFO head, prepend a :class:`SeqHeader`
   with the returned value, and forward.

RC executes atomics in PSN order and the responder answers in request
order, so FIFO parking yields arrival-ordered, gap-free stamping.

The sequencing rate is capped by the RNIC atomic engine (2.4 Mops/s in
this model) — the honest cost of moving the counter off-switch, measured
by :mod:`repro.experiments.sequencer`.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from ..core.channel import RemoteMemoryChannel
from ..core.rocegen import RoceRequestGenerator
from ..net.headers import HeaderError, UdpHeader
from ..net.packet import Packet
from ..rdma.constants import Opcode
from ..switches.pipeline import PipelineContext
from ..switches.registers import RegisterArray
from .programs import StaticL2Program

#: UDP destination port whose packets get sequenced.
SEQUENCER_PORT = 5900


@dataclass
class SeqHeader:
    """The stamped sequence header (prepended to the UDP payload)."""

    sequence: int

    LENGTH = 8

    def pack(self) -> bytes:
        return struct.pack("!Q", self.sequence)

    @classmethod
    def unpack(cls, data: bytes) -> "SeqHeader":
        if len(data) < cls.LENGTH:
            raise HeaderError(f"short sequence header: {len(data)} bytes")
        (sequence,) = struct.unpack("!Q", data[: cls.LENGTH])
        return cls(sequence=sequence)

    @property
    def byte_len(self) -> int:
        return self.LENGTH


@dataclass
class SequencerStats:
    sequenced: int = 0
    parked_peak: int = 0
    dropped_window_full: int = 0
    naks: int = 0


class SequencerProgram(StaticL2Program):
    """Static L2 forwarding; packets to SEQUENCER_PORT get sequenced."""

    def __init__(
        self,
        mac_to_port=None,
        max_outstanding: int = 16,
        max_parked: int = 4096,
        port: int = SEQUENCER_PORT,
    ) -> None:
        super().__init__(mac_to_port)
        self.max_outstanding = max_outstanding
        self.max_parked = max_parked
        self.port = port
        self.stats = SequencerStats()
        self.rocegen: Optional[RoceRequestGenerator] = None
        self.counter_address: Optional[int] = None
        self._outstanding = RegisterArray("sequencer.outstanding", 1, width_bits=16)
        # Parked packets awaiting their sequence numbers, arrival order.
        self._parked: Deque[Packet] = deque()
        # Parked but not yet issued (outstanding window was full).
        self._unissued: Deque[Packet] = deque()

    def use_channel(self, switch, channel: RemoteMemoryChannel) -> None:
        """Bind the remote counter (first 8 bytes of the region)."""
        self.rocegen = RoceRequestGenerator(switch, channel)
        self.counter_address = channel.base_address

    # -- data plane -----------------------------------------------------------

    def on_ingress(self, ctx: PipelineContext, packet: Packet) -> None:
        if self.rocegen is not None and self.rocegen.owns_response(packet):
            self._handle_atomic_ack(ctx, packet)
            return
        udp = packet.find(UdpHeader)
        if (
            self.rocegen is None
            or udp is None
            or udp.dst_port != self.port
        ):
            self.forward_by_mac(ctx, packet)
            return
        if len(self._parked) + len(self._unissued) >= self.max_parked:
            self.stats.dropped_window_full += 1
            ctx.drop()
            return
        ctx.drop()  # the packet resumes once its sequence number returns
        if self._outstanding.read(0) < self.max_outstanding:
            self._issue(packet)
        else:
            self._unissued.append(packet)

    def _issue(self, packet: Packet) -> None:
        self._parked.append(packet)
        self.stats.parked_peak = max(
            self.stats.parked_peak, len(self._parked) + len(self._unissued)
        )
        self._outstanding.add(0, 1)
        self.rocegen.fetch_add(self.counter_address, 1)

    def _handle_atomic_ack(self, ctx: PipelineContext, packet: Packet) -> None:
        opcode = self.rocegen.classify_response(packet)
        ctx.drop()
        if self.rocegen.is_nak(packet):
            # The parked head's sequence is lost; drop the packet rather
            # than stamp a guess (sequencers must never emit duplicates).
            self.stats.naks += 1
            self.rocegen.maybe_resync(packet)
            if self._parked:
                self._parked.popleft()
            self._retire_one()
            return
        if opcode != Opcode.ATOMIC_ACKNOWLEDGE or not self._parked:
            return
        sequence = self.rocegen.atomic_result(packet)
        original = self._parked.popleft()
        original.payload = SeqHeader(sequence).pack() + original.payload
        original.fixup_lengths()
        self.stats.sequenced += 1
        self._retire_one()
        port = self.mac_to_port.get(original.eth.dst)
        if port is not None:
            ctx.emit(original, port)

    def _retire_one(self) -> None:
        self._outstanding.write(0, max(0, self._outstanding.read(0) - 1))
        if self._unissued and self._outstanding.read(0) < self.max_outstanding:
            self._issue(self._unissued.popleft())
