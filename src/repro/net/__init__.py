"""Network substrate: addresses, header codecs, packets, links, nodes."""

from .addresses import Ipv4Address, MacAddress
from .headers import (
    ETHERNET_FCS_BYTES,
    ETHERNET_IFG_BYTES,
    ETHERNET_MIN_FRAME,
    ETHERNET_PREAMBLE_BYTES,
    ETHERNET_WIRE_OVERHEAD,
    ETHERTYPE_IPV4,
    ETHERTYPE_ROCEV1,
    ROCEV2_UDP_PORT,
    EthernetHeader,
    HeaderError,
    Ipv4Header,
    UdpHeader,
    ipv4_checksum,
)
from .link import Link, connect
from .node import Interface, Node
from .packet import Packet
from .pcap import PcapWriter
from .queues import TxQueue

__all__ = [
    "ETHERNET_FCS_BYTES",
    "ETHERNET_IFG_BYTES",
    "ETHERNET_MIN_FRAME",
    "ETHERNET_PREAMBLE_BYTES",
    "ETHERNET_WIRE_OVERHEAD",
    "ETHERTYPE_IPV4",
    "ETHERTYPE_ROCEV1",
    "ROCEV2_UDP_PORT",
    "EthernetHeader",
    "HeaderError",
    "Interface",
    "Ipv4Address",
    "Ipv4Header",
    "Link",
    "MacAddress",
    "Node",
    "Packet",
    "PcapWriter",
    "TxQueue",
    "UdpHeader",
    "connect",
    "ipv4_checksum",
]
