"""The structured packet model.

A :class:`Packet` is an ordered stack of header objects (outermost first)
plus an opaque payload.  Network elements manipulate the structured form —
pushing and popping headers the way a P4 deparser would — while byte-level
serialization remains available for tests, pcap dumps, and wire-size
accounting.

``meta`` carries simulation-only annotations (flow ids, creation timestamps,
trace hooks) that never appear on the wire and never count toward sizes.
"""

from __future__ import annotations

import copy
import itertools
from typing import Any, Dict, List, Optional, Type, TypeVar

from .headers import (
    ETHERNET_FCS_BYTES,
    ETHERNET_MIN_FRAME,
    ETHERNET_WIRE_OVERHEAD,
    ETHERTYPE_IPV4,
    EthernetHeader,
    HeaderError,
    Ipv4Header,
    UdpHeader,
)

H = TypeVar("H")

_packet_ids = itertools.count(1)


class Packet:
    """A network packet: a header stack, payload bytes, optional trailers.

    Trailers (e.g. the RoCE invariant CRC) are packed *after* the payload
    and count toward all sizes, mirroring their position on the wire.
    """

    __slots__ = ("headers", "payload", "trailers", "meta", "packet_id")

    def __init__(
        self,
        headers: Optional[List[Any]] = None,
        payload: bytes = b"",
        trailers: Optional[List[Any]] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.headers: List[Any] = list(headers) if headers else []
        self.payload = bytes(payload)
        self.trailers: List[Any] = list(trailers) if trailers else []
        self.meta: Dict[str, Any] = dict(meta) if meta else {}
        self.packet_id = next(_packet_ids)

    # -- header-stack manipulation -------------------------------------------

    def push(self, header: Any) -> "Packet":
        """Prepend *header* as the new outermost header (returns self)."""
        self.headers.insert(0, header)
        return self

    def pop(self) -> Any:
        """Remove and return the outermost header."""
        if not self.headers:
            raise HeaderError("cannot pop from an empty header stack")
        return self.headers.pop(0)

    def find(self, header_type: Type[H]) -> Optional[H]:
        """Return the first header of *header_type*, or None."""
        for header in self.headers:
            if isinstance(header, header_type):
                return header
        return None

    def require(self, header_type: Type[H]) -> H:
        """Return the first header of *header_type*, raising if absent."""
        header = self.find(header_type)
        if header is None:
            raise HeaderError(f"packet has no {header_type.__name__}")
        return header

    def index_of(self, header_type: Type[Any]) -> int:
        """Return the stack index of the first header of *header_type*."""
        for i, header in enumerate(self.headers):
            if isinstance(header, header_type):
                return i
        raise HeaderError(f"packet has no {header_type.__name__}")

    @property
    def eth(self) -> EthernetHeader:
        return self.require(EthernetHeader)

    @property
    def ipv4(self) -> Ipv4Header:
        return self.require(Ipv4Header)

    @property
    def udp(self) -> UdpHeader:
        return self.require(UdpHeader)

    # -- sizes -----------------------------------------------------------------

    def find_trailer(self, trailer_type: Type[H]) -> Optional[H]:
        """Return the first trailer of *trailer_type*, or None."""
        for trailer in self.trailers:
            if isinstance(trailer, trailer_type):
                return trailer
        return None

    @property
    def header_len(self) -> int:
        """Total bytes of all headers in the stack (trailers excluded)."""
        return sum(h.byte_len for h in self.headers)

    @property
    def trailer_len(self) -> int:
        """Total bytes of all trailers."""
        return sum(t.byte_len for t in self.trailers)

    @property
    def frame_len(self) -> int:
        """L2 frame size: headers + payload + trailers + FCS, min-padded."""
        raw = (
            self.header_len
            + len(self.payload)
            + self.trailer_len
            + ETHERNET_FCS_BYTES
        )
        return max(raw, ETHERNET_MIN_FRAME)

    @property
    def wire_len(self) -> int:
        """Bytes occupied on the wire: frame plus preamble + IFG."""
        return self.frame_len + (ETHERNET_WIRE_OVERHEAD - ETHERNET_FCS_BYTES)

    @property
    def buffer_len(self) -> int:
        """Bytes this packet occupies in a switch buffer."""
        return self.header_len + len(self.payload) + self.trailer_len

    # -- serialization -----------------------------------------------------------

    def fixup_lengths(self) -> None:
        """Make IPv4/UDP length fields consistent with the current stack.

        Walks the stack once; for each IPv4 (resp. UDP) header the length
        covers every header *after* it plus the payload.
        """
        trailer_bytes = self.trailer_len
        for i, header in enumerate(self.headers):
            tail = (
                sum(h.byte_len for h in self.headers[i:])
                + len(self.payload)
                + trailer_bytes
            )
            if isinstance(header, Ipv4Header):
                header.total_length = tail
            elif isinstance(header, UdpHeader):
                header.length = tail

    def pack(self) -> bytes:
        """Serialize the packet to bytes (without FCS/preamble/IFG)."""
        self.fixup_lengths()
        return (
            b"".join(h.pack() for h in self.headers)
            + self.payload
            + b"".join(t.pack() for t in self.trailers)
        )

    @classmethod
    def parse(cls, data: bytes) -> "Packet":
        """Parse Ethernet → IPv4 → UDP from raw bytes.

        Anything below UDP (or a non-IPv4/non-UDP stack) is kept as opaque
        payload; protocol modules such as :mod:`repro.rdma.headers` provide
        their own continuation parsers over that payload.
        """
        headers: List[Any] = []
        eth = EthernetHeader.unpack(data)
        headers.append(eth)
        offset = EthernetHeader.LENGTH
        if eth.ethertype == ETHERTYPE_IPV4 and len(data) >= offset + Ipv4Header.LENGTH:
            ip = Ipv4Header.unpack(data[offset:])
            headers.append(ip)
            # Honour the IP length: Ethernet frames may carry padding (or,
            # for packets read back from a reused ring-buffer slot, stale
            # bytes of a previous longer frame).
            end = min(len(data), offset + ip.total_length)
            data = data[:end]
            offset += Ipv4Header.LENGTH
            if ip.protocol == Ipv4Header.PROTO_UDP and len(data) >= offset + UdpHeader.LENGTH:
                udp = UdpHeader.unpack(data[offset:])
                headers.append(udp)
                offset += UdpHeader.LENGTH
        return cls(headers=headers, payload=data[offset:])

    # -- copying -----------------------------------------------------------------

    def clone(self) -> "Packet":
        """Deep-copy the packet (fresh packet_id), as a switch mirror would."""
        cloned = Packet(
            headers=[copy.deepcopy(h) for h in self.headers],
            payload=self.payload,
            trailers=[copy.deepcopy(t) for t in self.trailers],
            meta=copy.deepcopy(self.meta),
        )
        return cloned

    def __repr__(self) -> str:
        names = "/".join(type(h).__name__.replace("Header", "") for h in self.headers)
        return (
            f"<Packet #{self.packet_id} {names or 'raw'} "
            f"payload={len(self.payload)}B frame={self.frame_len}B>"
        )
