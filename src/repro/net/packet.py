"""The structured packet model.

A :class:`Packet` is an ordered stack of header objects (outermost first)
plus an opaque payload.  Network elements manipulate the structured form —
pushing and popping headers the way a P4 deparser would — while byte-level
serialization remains available for tests, pcap dumps, and wire-size
accounting.

``meta`` carries simulation-only annotations (flow ids, creation timestamps,
trace hooks) that never appear on the wire and never count toward sizes.

Fast-path notes: header/trailer byte totals are cached and maintained
incrementally — the stacks are :class:`_HeaderList` instances whose mutators
invalidate the owning packet's size caches, so ``frame_len``/``wire_len``
on an unchanged stack never re-walk it.  ``clone()`` duplicates each header
shallowly (header field values are all immutable — ints, bytes, addresses)
and shares the payload bytes instead of deep-copying, which is what a
switch mirror semantically needs at a fraction of the cost.
"""

from __future__ import annotations

import copy
import itertools
from typing import Any, Dict, Iterable, List, Optional, Type, TypeVar

from .headers import (
    ETHERNET_FCS_BYTES,
    ETHERNET_MIN_FRAME,
    ETHERNET_WIRE_OVERHEAD,
    ETHERTYPE_IPV4,
    EthernetHeader,
    HeaderError,
    Ipv4Header,
    UdpHeader,
)

H = TypeVar("H")

_packet_ids = itertools.count(1)

#: Process-wide count of packets constructed, for the profiling harness.
_packets_created = 0


def packets_created() -> int:
    """Packets constructed in this process since import (all instances)."""
    return _packets_created


class _HeaderList(list):
    """A header stack that invalidates its packet's size caches on mutation.

    Every length-affecting mutator notifies the owning :class:`Packet`;
    ``sort``/``reverse`` keep the same contents so they are left alone.
    """

    __slots__ = ("_owner",)

    def append(self, item: Any) -> None:
        list.append(self, item)
        self._owner._dirty_sizes()

    def extend(self, items: Iterable[Any]) -> None:
        list.extend(self, items)
        self._owner._dirty_sizes()

    def insert(self, index: int, item: Any) -> None:
        list.insert(self, index, item)
        self._owner._dirty_sizes()

    def remove(self, item: Any) -> None:
        list.remove(self, item)
        self._owner._dirty_sizes()

    def pop(self, index: int = -1) -> Any:
        item = list.pop(self, index)
        self._owner._dirty_sizes()
        return item

    def clear(self) -> None:
        list.clear(self)
        self._owner._dirty_sizes()

    def __setitem__(self, index: Any, value: Any) -> None:
        list.__setitem__(self, index, value)
        self._owner._dirty_sizes()

    def __delitem__(self, index: Any) -> None:
        list.__delitem__(self, index)
        self._owner._dirty_sizes()

    def __iadd__(self, items: Iterable[Any]) -> "_HeaderList":
        list.extend(self, items)
        self._owner._dirty_sizes()
        return self

    def __imul__(self, count: int) -> "_HeaderList":
        result = list.__imul__(self, count)
        self._owner._dirty_sizes()
        return result


class Packet:
    """A network packet: a header stack, payload bytes, optional trailers.

    Trailers (e.g. the RoCE invariant CRC) are packed *after* the payload
    and count toward all sizes, mirroring their position on the wire.
    """

    __slots__ = (
        "_headers",
        "payload",
        "_trailers",
        "meta",
        "packet_id",
        "_hdr_len",
        "_trl_len",
        "_in_pool",
    )

    def __init__(
        self,
        headers: Optional[List[Any]] = None,
        payload: bytes = b"",
        trailers: Optional[List[Any]] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._headers = self._adopt(headers)
        self.payload = payload if type(payload) is bytes else bytes(payload)
        self._trailers = self._adopt(trailers)
        self.meta: Dict[str, Any] = dict(meta) if meta else {}
        self.packet_id = next(_packet_ids)
        self._hdr_len: Optional[int] = None
        self._trl_len: Optional[int] = None
        self._in_pool = False
        global _packets_created
        _packets_created += 1

    def _adopt(self, items: Optional[Iterable[Any]]) -> _HeaderList:
        stack = _HeaderList(items) if items else _HeaderList()
        stack._owner = self
        return stack

    def _dirty_sizes(self) -> None:
        self._hdr_len = None
        self._trl_len = None

    @property
    def headers(self) -> List[Any]:
        """The header stack, outermost first (mutable in place)."""
        return self._headers

    @headers.setter
    def headers(self, items: Iterable[Any]) -> None:
        self._headers = self._adopt(list(items))
        self._dirty_sizes()

    @property
    def trailers(self) -> List[Any]:
        """The trailer stack (mutable in place)."""
        return self._trailers

    @trailers.setter
    def trailers(self, items: Iterable[Any]) -> None:
        self._trailers = self._adopt(list(items))
        self._dirty_sizes()

    # -- header-stack manipulation -------------------------------------------

    def push(self, header: Any) -> "Packet":
        """Prepend *header* as the new outermost header (returns self)."""
        self._headers.insert(0, header)
        return self

    def pop(self) -> Any:
        """Remove and return the outermost header."""
        if not self._headers:
            raise HeaderError("cannot pop from an empty header stack")
        return self._headers.pop(0)

    def find(self, header_type: Type[H]) -> Optional[H]:
        """Return the first header of *header_type*, or None."""
        for header in self._headers:
            if isinstance(header, header_type):
                return header
        return None

    def require(self, header_type: Type[H]) -> H:
        """Return the first header of *header_type*, raising if absent."""
        header = self.find(header_type)
        if header is None:
            raise HeaderError(f"packet has no {header_type.__name__}")
        return header

    def index_of(self, header_type: Type[Any]) -> int:
        """Return the stack index of the first header of *header_type*."""
        for i, header in enumerate(self._headers):
            if isinstance(header, header_type):
                return i
        raise HeaderError(f"packet has no {header_type.__name__}")

    @property
    def eth(self) -> EthernetHeader:
        return self.require(EthernetHeader)

    @property
    def ipv4(self) -> Ipv4Header:
        return self.require(Ipv4Header)

    @property
    def udp(self) -> UdpHeader:
        return self.require(UdpHeader)

    # -- sizes -----------------------------------------------------------------

    def find_trailer(self, trailer_type: Type[H]) -> Optional[H]:
        """Return the first trailer of *trailer_type*, or None."""
        for trailer in self._trailers:
            if isinstance(trailer, trailer_type):
                return trailer
        return None

    @property
    def header_len(self) -> int:
        """Total bytes of all headers in the stack (trailers excluded)."""
        n = self._hdr_len
        if n is None:
            n = self._hdr_len = sum(h.byte_len for h in self._headers)
        return n

    @property
    def trailer_len(self) -> int:
        """Total bytes of all trailers."""
        n = self._trl_len
        if n is None:
            n = self._trl_len = sum(t.byte_len for t in self._trailers)
        return n

    @property
    def frame_len(self) -> int:
        """L2 frame size: headers + payload + trailers + FCS, min-padded."""
        raw = (
            self.header_len
            + len(self.payload)
            + self.trailer_len
            + ETHERNET_FCS_BYTES
        )
        return max(raw, ETHERNET_MIN_FRAME)

    @property
    def wire_len(self) -> int:
        """Bytes occupied on the wire: frame plus preamble + IFG."""
        return self.frame_len + (ETHERNET_WIRE_OVERHEAD - ETHERNET_FCS_BYTES)

    @property
    def buffer_len(self) -> int:
        """Bytes this packet occupies in a switch buffer."""
        return self.header_len + len(self.payload) + self.trailer_len

    # -- serialization -----------------------------------------------------------

    def fixup_lengths(self) -> None:
        """Make IPv4/UDP length fields consistent with the current stack.

        Walks the stack once, innermost header outward; for each IPv4
        (resp. UDP) header the length covers the header itself, every
        header after it, the payload, and the trailers.
        """
        after = len(self.payload) + self.trailer_len
        for header in reversed(self._headers):
            after += header.byte_len
            if isinstance(header, Ipv4Header):
                header.total_length = after
            elif isinstance(header, UdpHeader):
                header.length = after

    def pack(self) -> bytes:
        """Serialize the packet to bytes (without FCS/preamble/IFG)."""
        self.fixup_lengths()
        return (
            b"".join(h.pack() for h in self._headers)
            + self.payload
            + b"".join(t.pack() for t in self._trailers)
        )

    @classmethod
    def parse(cls, data: bytes) -> "Packet":
        """Parse Ethernet → IPv4 → UDP from raw bytes.

        Anything below UDP (or a non-IPv4/non-UDP stack) is kept as opaque
        payload; protocol modules such as :mod:`repro.rdma.headers` provide
        their own continuation parsers over that payload.
        """
        headers: List[Any] = []
        eth = EthernetHeader.unpack(data)
        headers.append(eth)
        offset = EthernetHeader.LENGTH
        if eth.ethertype == ETHERTYPE_IPV4 and len(data) >= offset + Ipv4Header.LENGTH:
            ip = Ipv4Header.unpack(data[offset:])
            headers.append(ip)
            # Honour the IP length: Ethernet frames may carry padding (or,
            # for packets read back from a reused ring-buffer slot, stale
            # bytes of a previous longer frame).
            end = min(len(data), offset + ip.total_length)
            data = data[:end]
            offset += Ipv4Header.LENGTH
            if ip.protocol == Ipv4Header.PROTO_UDP and len(data) >= offset + UdpHeader.LENGTH:
                udp = UdpHeader.unpack(data[offset:])
                headers.append(udp)
                offset += UdpHeader.LENGTH
        return cls(headers=headers, payload=data[offset:])

    # -- copying -----------------------------------------------------------------

    @staticmethod
    def _copy_header(header: Any) -> Any:
        # Headers are dataclasses whose field values are all immutable
        # (ints, bools, bytes, MacAddress/Ipv4Address), so a fresh object
        # sharing the same values is as independent as a deep copy.
        cls = type(header)
        try:
            dup = cls.__new__(cls)
            dup.__dict__.update(header.__dict__)
        except (TypeError, AttributeError):
            return copy.deepcopy(header)
        return dup

    def clone(self) -> "Packet":
        """Copy the packet (fresh packet_id), as a switch mirror would.

        Headers and trailers are duplicated as independent objects (their
        field values are immutable, so no deep copy is needed); the payload
        bytes are shared, never copied.  Mutating the clone's headers or
        payload cannot affect the original.  Scalar ``meta`` values are
        carried over directly; container values are deep-copied.
        """
        copy_header = self._copy_header
        meta = self.meta
        if meta:
            new_meta = {
                key: value
                if type(value) in (int, float, str, bytes, bool, type(None))
                else copy.deepcopy(value)
                for key, value in meta.items()
            }
        else:
            new_meta = None
        return Packet(
            headers=[copy_header(h) for h in self._headers],
            payload=self.payload,
            trailers=[copy_header(t) for t in self._trailers],
            meta=new_meta,
        )

    def release(self, pool: Optional["PacketPool"] = None) -> None:
        """Return this packet (and its header objects) to a free-list pool.

        Opt-in recycling for workloads that churn packets: the caller
        asserts that *nothing else* holds a reference to this packet or to
        its header/trailer objects — no retransmit queue, no pending
        delivery, no trace buffer.  After release the packet must not be
        touched; a later :meth:`PacketPool.acquire`/:meth:`PacketPool.clone`
        may re-initialise it in place under a fresh ``packet_id``.
        Double release is a no-op.
        """
        (pool if pool is not None else DEFAULT_POOL)._release(self)

    def __repr__(self) -> str:
        names = "/".join(type(h).__name__.replace("Header", "") for h in self._headers)
        return (
            f"<Packet #{self.packet_id} {names or 'raw'} "
            f"payload={len(self.payload)}B frame={self.frame_len}B>"
        )


class PacketPool:
    """A free list of :class:`Packet` shells with header-scratch reuse.

    Packet churn is the second hot path after the event loop: every hop
    of every simulated exchange builds packets (requests, responses,
    mirrors) that die microseconds later.  The pool recycles the whole
    object graph — the :class:`Packet` shell, its ``_HeaderList``
    containers, its ``meta`` dict, *and the released header objects
    themselves*, which become scratch that :meth:`clone` re-initialises
    field-by-field instead of allocating fresh headers.

    Recycling is strictly opt-in (see :meth:`Packet.release`): the core
    simulation never releases packets on your behalf, because a packet
    "received" at one node is routinely still referenced elsewhere (a
    sender's retransmit queue, a pending duplicate delivery, a tap's
    capture buffer).  Pool or not, an acquired packet is indistinguishable
    from a fresh one: new ``packet_id``, clean caches, independent stacks.
    """

    __slots__ = ("_free", "max_free", "hits", "misses", "recycled")

    def __init__(self, max_free: int = 1024) -> None:
        self._free: List[Packet] = []
        #: Shells beyond this many are dropped on release (GC reclaims them).
        self.max_free = max_free
        self.hits = 0
        self.misses = 0
        self.recycled = 0

    def __len__(self) -> int:
        return len(self._free)

    def _release(self, packet: Packet) -> None:
        if packet._in_pool:
            return
        if len(self._free) >= self.max_free:
            return
        packet._in_pool = True
        self.recycled += 1
        self._free.append(packet)

    def acquire(
        self,
        headers: Optional[List[Any]] = None,
        payload: bytes = b"",
        trailers: Optional[List[Any]] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Packet:
        """A packet initialised like ``Packet(...)``, recycled if possible.

        The given header/trailer objects are adopted as-is (exactly like
        the :class:`Packet` constructor); only the shell and containers
        are reused.  Use :meth:`clone` to also recycle header objects.
        """
        packet = self._reuse_shell()
        if packet is None:
            self.misses += 1
            return Packet(
                headers=headers, payload=payload, trailers=trailers, meta=meta
            )
        hdrs = packet._headers
        list.clear(hdrs)
        if headers:
            list.extend(hdrs, headers)
        trls = packet._trailers
        list.clear(trls)
        if trailers:
            list.extend(trls, trailers)
        packet.payload = payload if type(payload) is bytes else bytes(payload)
        if meta:
            packet.meta.update(meta)
        return packet

    def clone(self, source: Packet) -> Packet:
        """Clone *source* through the pool (semantics of :meth:`Packet.clone`).

        On a free-list hit, the recycled shell's retained header objects
        are re-initialised in place from the source's fields whenever the
        types line up positionally — zero header allocation for the
        steady-state case of cloning the same packet shape repeatedly.
        """
        packet = self._reuse_shell()
        if packet is None:
            self.misses += 1
            return source.clone()
        copy_header = Packet._copy_header
        for stack, src_stack in (
            (packet._headers, source._headers),
            (packet._trailers, source._trailers),
        ):
            scratch = list(stack)
            list.clear(stack)
            for i, src_header in enumerate(src_stack):
                if (
                    i < len(scratch)
                    and type(scratch[i]) is type(src_header)
                    and hasattr(src_header, "__dict__")
                ):
                    dup = scratch[i]
                    dup.__dict__.clear()
                    dup.__dict__.update(src_header.__dict__)
                else:
                    dup = copy_header(src_header)
                list.append(stack, dup)
        packet.payload = source.payload
        src_meta = source.meta
        if src_meta:
            packet.meta.update(
                {
                    key: value
                    if type(value) in (int, float, str, bytes, bool, type(None))
                    else copy.deepcopy(value)
                    for key, value in src_meta.items()
                }
            )
        # The shell kept the source's sizes only if the stacks matched;
        # recompute lazily either way (cleared in _reuse_shell).
        return packet

    def _reuse_shell(self) -> Optional[Packet]:
        free = self._free
        if not free:
            return None
        self.hits += 1
        packet = free.pop()
        packet._in_pool = False
        packet.packet_id = next(_packet_ids)
        # Keep the containers and their retained header objects: clone()
        # uses them as scratch.  acquire() clears them below/extends.
        packet.meta.clear()
        packet._hdr_len = None
        packet._trl_len = None
        return packet


#: Process-wide default pool used by ``Packet.release()`` with no argument.
DEFAULT_POOL = PacketPool()
