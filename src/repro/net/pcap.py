"""Minimal pcap (libpcap classic format) writer.

Useful for debugging: attach :meth:`PcapWriter.tap` to an interface and the
serialized bytes of every packet crossing it land in a file Wireshark can
open (RoCEv2 traffic decodes natively on UDP port 4791).
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Optional

from ..sim.simulator import Simulator
from .packet import Packet

_PCAP_MAGIC = 0xA1B2C3D4
_PCAP_VERSION = (2, 4)
_LINKTYPE_ETHERNET = 1


class PcapWriter:
    """Write packets to a classic pcap file with nanosecond-derived timestamps."""

    def __init__(self, fileobj: BinaryIO, sim: Optional[Simulator] = None) -> None:
        self._file = fileobj
        self._sim = sim
        self._file.write(
            struct.pack(
                "!IHHiIII",
                _PCAP_MAGIC,
                _PCAP_VERSION[0],
                _PCAP_VERSION[1],
                0,          # thiszone
                0,          # sigfigs
                65535,      # snaplen
                _LINKTYPE_ETHERNET,
            )
        )
        self.packets_written = 0

    def write(self, packet: Packet, time_ns: Optional[float] = None) -> None:
        """Append *packet* at *time_ns* (defaults to the simulator clock)."""
        if time_ns is None:
            time_ns = self._sim.now if self._sim is not None else 0.0
        data = packet.pack()
        seconds = int(time_ns // 1_000_000_000)
        micros = int((time_ns % 1_000_000_000) / 1000)
        self._file.write(
            struct.pack("!IIII", seconds, micros, len(data), len(data))
        )
        self._file.write(data)
        self.packets_written += 1

    def tap(self, packet: Packet) -> None:
        """Interface-tap adapter: ``iface.tx_taps.append(writer.tap)``."""
        self.write(packet)

    def close(self) -> None:
        self._file.close()
