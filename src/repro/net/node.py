"""Nodes and interfaces: the attachment points of the simulated network.

A :class:`Node` is anything with interfaces — a host, a memory server, a
switch.  An :class:`Interface` owns the transmit side of one end of a link:
it serializes packets one at a time at the link rate, then hands them to the
link for propagation to the peer.  Receive is a callback into the owning
node.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..sim.simulator import Simulator
from ..sim.units import transmission_delay_ns
from .addresses import Ipv4Address, MacAddress
from .packet import Packet
from .queues import TxQueue

if TYPE_CHECKING:
    from .link import Link


class Interface:
    """One port of a node; transmit queue + serializer for one link end."""

    def __init__(
        self,
        node: "Node",
        name: str,
        mac: MacAddress,
        ip: Optional[Ipv4Address] = None,
        queue: Optional[TxQueue] = None,
    ) -> None:
        self.node = node
        self.name = name
        self.mac = MacAddress(mac)
        self.ip = Ipv4Address(ip) if ip is not None else None
        self.queue = queue if queue is not None else TxQueue()
        self.link: Optional["Link"] = None
        self._busy = False
        self._paused = False
        # Counters for bandwidth monitors.
        self.tx_packets = 0
        self.tx_bytes = 0        # wire bytes, incl. preamble/IFG/FCS
        self.rx_packets = 0
        self.rx_bytes = 0
        #: Optional taps, called as tap(packet) on transmit start / receive.
        self.tx_taps: List[Callable[[Packet], None]] = []
        self.rx_taps: List[Callable[[Packet], None]] = []
        #: Callback fired when the serializer goes idle with an empty queue.
        self.on_idle: Optional[Callable[[], None]] = None

    @property
    def sim(self) -> Simulator:
        return self.node.sim

    @property
    def peer(self) -> Optional["Interface"]:
        """The interface at the other end of the attached link."""
        if self.link is None:
            return None
        return self.link.peer_of(self)

    @property
    def rate_bps(self) -> float:
        if self.link is None:
            raise RuntimeError(f"{self} has no link attached")
        return self.link.rate_bps

    # -- transmit path -------------------------------------------------------------

    def send(self, packet: Packet) -> bool:
        """Queue *packet* for transmission; returns False if the queue dropped it."""
        if self.link is None:
            raise RuntimeError(f"{self} has no link attached")
        admitted = self.queue.offer(packet)
        if admitted and not self._busy:
            self._start_next()
        return admitted

    def kick(self) -> None:
        """(Re)start transmission if idle — used after queue-side refills."""
        if not self._busy:
            self._start_next()

    @property
    def paused(self) -> bool:
        return self._paused

    def set_paused(self, paused: bool) -> None:
        """Assert or release flow-control pause (802.1Qbb PFC, class-agnostic).

        While paused, queued packets are held; the packet currently being
        serialized (if any) completes, as on real hardware.
        """
        was_paused = self._paused
        self._paused = paused
        if was_paused and not paused:
            self.kick()

    def _start_next(self) -> None:
        if self._paused:
            self._busy = False
            return
        packet = self.queue.poll()
        if packet is None:
            self._busy = False
            if self.on_idle is not None:
                self.on_idle()
            return
        self._busy = True
        for tap in self.tx_taps:
            tap(packet)
        self.tx_packets += 1
        self.tx_bytes += packet.wire_len
        serialize_ns = transmission_delay_ns(packet.wire_len, self.rate_bps)
        assert self.link is not None
        # Serializer completions are never cancelled: fire-and-forget.
        self.sim.post(serialize_ns, self._finish_transmit, packet)

    def _finish_transmit(self, packet: Packet) -> None:
        assert self.link is not None
        self.link.carry(self, packet)
        self._start_next()

    # -- receive path ----------------------------------------------------------------

    def deliver(self, packet: Packet) -> None:
        """Called by the link when *packet* finishes propagating to this end."""
        self.rx_packets += 1
        self.rx_bytes += packet.wire_len
        for tap in self.rx_taps:
            tap(packet)
        self.node.receive(packet, self)

    def deliver_batch(self, packets: List[Packet]) -> None:
        """Deliver a same-instant cohort of packets arriving on this interface.

        Called by the batch kernel when adjacent deliveries coalesce.  Taps
        and rx accounting run per packet, in arrival order, exactly as if
        :meth:`deliver` had been called for each — only the hand-off into
        the node is batched.
        """
        self.rx_packets += len(packets)
        self.rx_bytes += sum(p.wire_len for p in packets)
        taps = self.rx_taps
        if taps:
            for packet in packets:
                for tap in taps:
                    tap(packet)
        self.node.receive_batch(packets, self)

    def __repr__(self) -> str:
        return f"<Interface {self.node.name}:{self.name} mac={self.mac}>"


class Node:
    """Base class for every network element (host, server, switch)."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.interfaces: Dict[str, Interface] = {}

    def add_interface(
        self,
        name: str,
        mac: MacAddress,
        ip: Optional[Ipv4Address] = None,
        queue: Optional[TxQueue] = None,
    ) -> Interface:
        """Create and register a new interface on this node."""
        if name in self.interfaces:
            raise ValueError(f"{self.name} already has an interface {name!r}")
        interface = Interface(self, name, mac, ip=ip, queue=queue)
        self.interfaces[name] = interface
        return interface

    def interface(self, name: str) -> Interface:
        return self.interfaces[name]

    def receive(self, packet: Packet, interface: Interface) -> None:
        """Handle an arriving packet.  Subclasses override."""
        raise NotImplementedError

    def receive_batch(self, packets: List[Packet], interface: Interface) -> None:
        """Handle a same-instant cohort of packets from *interface*.

        Default: loop over :meth:`receive`.  Hot nodes (switch, host)
        override to hoist per-packet lookups out of the loop.
        """
        receive = self.receive
        for packet in packets:
            receive(packet, interface)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
