"""Byte-accurate codecs for the classic header stack: Ethernet, IPv4, UDP.

Every header type supports ``pack() -> bytes`` and ``unpack(bytes)`` that
round-trip exactly; property-based tests assert this invariant.  Packets in
the simulator carry *structured* header objects for speed, but wire sizes and
serialized bytes always come from these codecs, so bandwidth accounting is
grounded in the real formats rather than hard-coded constants.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from .addresses import Ipv4Address, MacAddress

#: EtherType for IPv4.
ETHERTYPE_IPV4 = 0x0800
#: EtherType for RoCEv1 (Infiniband global routing directly over Ethernet).
ETHERTYPE_ROCEV1 = 0x8915
#: UDP destination port reserved for RoCEv2 (IANA).
ROCEV2_UDP_PORT = 4791

#: Ethernet preamble + start-of-frame delimiter, bytes on the wire.
ETHERNET_PREAMBLE_BYTES = 8
#: Minimum inter-frame gap, bytes on the wire.
ETHERNET_IFG_BYTES = 12
#: Frame check sequence (CRC32) appended to every frame.
ETHERNET_FCS_BYTES = 4
#: Total per-frame wire overhead beyond the L2 header and payload.
ETHERNET_WIRE_OVERHEAD = (
    ETHERNET_PREAMBLE_BYTES + ETHERNET_IFG_BYTES + ETHERNET_FCS_BYTES
)
#: Minimum Ethernet frame size (header + payload + FCS), excluding preamble/IFG.
ETHERNET_MIN_FRAME = 64


class HeaderError(ValueError):
    """Raised when a header cannot be decoded from raw bytes."""


@dataclass
class EthernetHeader:
    """IEEE 802.3 Ethernet II header (14 bytes, no VLAN tag)."""

    dst: MacAddress
    src: MacAddress
    ethertype: int = ETHERTYPE_IPV4

    LENGTH = 14

    def __post_init__(self) -> None:
        self.dst = MacAddress(self.dst)
        self.src = MacAddress(self.src)
        if not 0 <= self.ethertype <= 0xFFFF:
            raise HeaderError(f"ethertype out of range: {self.ethertype:#x}")

    def pack(self) -> bytes:
        return (
            self.dst.to_bytes()
            + self.src.to_bytes()
            + struct.pack("!H", self.ethertype)
        )

    @classmethod
    def unpack(cls, data: bytes) -> "EthernetHeader":
        if len(data) < cls.LENGTH:
            raise HeaderError(f"short Ethernet header: {len(data)} bytes")
        dst = MacAddress.from_bytes(data[0:6])
        src = MacAddress.from_bytes(data[6:12])
        (ethertype,) = struct.unpack("!H", data[12:14])
        return cls(dst=dst, src=src, ethertype=ethertype)

    @property
    def byte_len(self) -> int:
        return self.LENGTH


def ipv4_checksum(header_bytes: bytes) -> int:
    """Compute the RFC 1071 one's-complement checksum over *header_bytes*.

    The checksum field itself must be zeroed in the input.
    """
    if len(header_bytes) % 2:
        header_bytes += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", header_bytes):
        total += word
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


@dataclass
class Ipv4Header:
    """IPv4 header (20 bytes, no options).

    ``total_length`` covers the IPv4 header plus everything after it; the
    packet layer keeps it consistent automatically when packing.
    """

    src: Ipv4Address
    dst: Ipv4Address
    protocol: int = 17  # UDP
    total_length: int = 20
    ttl: int = 64
    dscp: int = 0
    ecn: int = 0
    identification: int = 0
    flags: int = 0b010  # don't fragment
    fragment_offset: int = 0

    LENGTH = 20
    PROTO_UDP = 17
    PROTO_TCP = 6

    def __post_init__(self) -> None:
        self.src = Ipv4Address(self.src)
        self.dst = Ipv4Address(self.dst)
        for name, value, limit in (
            ("protocol", self.protocol, 0xFF),
            ("total_length", self.total_length, 0xFFFF),
            ("ttl", self.ttl, 0xFF),
            ("dscp", self.dscp, 0x3F),
            ("ecn", self.ecn, 0x3),
            ("identification", self.identification, 0xFFFF),
            ("flags", self.flags, 0x7),
            ("fragment_offset", self.fragment_offset, 0x1FFF),
        ):
            if not 0 <= value <= limit:
                raise HeaderError(f"IPv4 {name} out of range: {value}")

    def pack(self) -> bytes:
        version_ihl = (4 << 4) | 5
        tos = (self.dscp << 2) | self.ecn
        flags_frag = (self.flags << 13) | self.fragment_offset
        without_checksum = struct.pack(
            "!BBHHHBBH4s4s",
            version_ihl,
            tos,
            self.total_length,
            self.identification,
            flags_frag,
            self.ttl,
            self.protocol,
            0,
            self.src.to_bytes(),
            self.dst.to_bytes(),
        )
        checksum = ipv4_checksum(without_checksum)
        return without_checksum[:10] + struct.pack("!H", checksum) + without_checksum[12:]

    @classmethod
    def unpack(cls, data: bytes) -> "Ipv4Header":
        if len(data) < cls.LENGTH:
            raise HeaderError(f"short IPv4 header: {len(data)} bytes")
        (
            version_ihl,
            tos,
            total_length,
            identification,
            flags_frag,
            ttl,
            protocol,
            checksum,
            src,
            dst,
        ) = struct.unpack("!BBHHHBBH4s4s", data[: cls.LENGTH])
        version = version_ihl >> 4
        ihl = version_ihl & 0xF
        if version != 4:
            raise HeaderError(f"not an IPv4 header (version={version})")
        if ihl != 5:
            raise HeaderError(f"IPv4 options unsupported (ihl={ihl})")
        verify = data[:10] + b"\x00\x00" + data[12 : cls.LENGTH]
        expected = ipv4_checksum(verify)
        if checksum != expected:
            raise HeaderError(
                f"bad IPv4 checksum: {checksum:#06x} != {expected:#06x}"
            )
        return cls(
            src=Ipv4Address.from_bytes(src),
            dst=Ipv4Address.from_bytes(dst),
            protocol=protocol,
            total_length=total_length,
            ttl=ttl,
            dscp=tos >> 2,
            ecn=tos & 0x3,
            identification=identification,
            flags=flags_frag >> 13,
            fragment_offset=flags_frag & 0x1FFF,
        )

    @property
    def byte_len(self) -> int:
        return self.LENGTH


@dataclass
class UdpHeader:
    """UDP header (8 bytes).

    The checksum is carried verbatim; RoCEv2 sets it to zero, which is legal
    for UDP over IPv4 and what real RNICs emit.
    """

    src_port: int
    dst_port: int
    length: int = 8
    checksum: int = 0

    LENGTH = 8

    def __post_init__(self) -> None:
        for name, value in (
            ("src_port", self.src_port),
            ("dst_port", self.dst_port),
            ("length", self.length),
            ("checksum", self.checksum),
        ):
            if not 0 <= value <= 0xFFFF:
                raise HeaderError(f"UDP {name} out of range: {value}")

    def pack(self) -> bytes:
        return struct.pack(
            "!HHHH", self.src_port, self.dst_port, self.length, self.checksum
        )

    @classmethod
    def unpack(cls, data: bytes) -> "UdpHeader":
        if len(data) < cls.LENGTH:
            raise HeaderError(f"short UDP header: {len(data)} bytes")
        src_port, dst_port, length, checksum = struct.unpack(
            "!HHHH", data[: cls.LENGTH]
        )
        return cls(src_port=src_port, dst_port=dst_port, length=length, checksum=checksum)

    @property
    def byte_len(self) -> int:
        return self.LENGTH
