"""Byte-accurate codecs for the classic header stack: Ethernet, IPv4, UDP.

Every header type supports ``pack() -> bytes`` and ``unpack(bytes)`` that
round-trip exactly; property-based tests assert this invariant.  Packets in
the simulator carry *structured* header objects for speed, but wire sizes and
serialized bytes always come from these codecs, so bandwidth accounting is
grounded in the real formats rather than hard-coded constants.

Fast-path notes: all codecs use module-level precompiled
:class:`struct.Struct` instances (no per-call format parsing), and every
header caches its serialized bytes via :class:`CachedPackMixin` — the cache
is invalidated only when a field assignment actually changes a value, so
re-packing an unmodified header (the overwhelmingly common case in the
simulator, e.g. a packet traversing several hops) is a dict lookup.  The
IPv4 checksum is computed arithmetically from the header fields on the
pack path and memoized by input bytes on the verify path.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .addresses import Ipv4Address, MacAddress

#: EtherType for IPv4.
ETHERTYPE_IPV4 = 0x0800
#: EtherType for RoCEv1 (Infiniband global routing directly over Ethernet).
ETHERTYPE_ROCEV1 = 0x8915
#: UDP destination port reserved for RoCEv2 (IANA).
ROCEV2_UDP_PORT = 4791

#: Ethernet preamble + start-of-frame delimiter, bytes on the wire.
ETHERNET_PREAMBLE_BYTES = 8
#: Minimum inter-frame gap, bytes on the wire.
ETHERNET_IFG_BYTES = 12
#: Frame check sequence (CRC32) appended to every frame.
ETHERNET_FCS_BYTES = 4
#: Total per-frame wire overhead beyond the L2 header and payload.
ETHERNET_WIRE_OVERHEAD = (
    ETHERNET_PREAMBLE_BYTES + ETHERNET_IFG_BYTES + ETHERNET_FCS_BYTES
)
#: Minimum Ethernet frame size (header + payload + FCS), excluding preamble/IFG.
ETHERNET_MIN_FRAME = 64

# Precompiled wire formats (struct.Struct avoids per-call format parsing).
_ETH_STRUCT = struct.Struct("!6s6sH")
_IPV4_STRUCT = struct.Struct("!BBHHHBBH4s4s")
_UDP_STRUCT = struct.Struct("!HHHH")
_WORDS_10 = struct.Struct("!10H")


class HeaderError(ValueError):
    """Raised when a header cannot be decoded from raw bytes."""


_MISSING = object()


class CachedPackMixin:
    """Caches a header's serialized bytes, invalidating on field mutation.

    Subclasses implement ``_pack() -> bytes``; ``pack()`` returns the cached
    bytes when no field has changed since the last serialization.  The
    invalidation hook compares old and new values, so rewriting a field
    with an identical value (e.g. ``fixup_lengths`` stamping an unchanged
    length on every pack) keeps the cache warm.  ``unpack`` constructors
    pre-seed the cache with the consumed wire bytes.
    """

    __slots__ = ()

    def __setattr__(self, name: str, value: object) -> None:
        d = self.__dict__
        if "_packed" in d:
            old = d.get(name, _MISSING)
            if old is not value and old != value:
                del d["_packed"]
        d[name] = value

    def pack(self) -> bytes:
        d = self.__dict__
        packed = d.get("_packed")
        if packed is None:
            packed = d["_packed"] = self._pack()
        return packed

    def _pack(self) -> bytes:
        raise NotImplementedError


@dataclass
class EthernetHeader(CachedPackMixin):
    """IEEE 802.3 Ethernet II header (14 bytes, no VLAN tag)."""

    dst: MacAddress
    src: MacAddress
    ethertype: int = ETHERTYPE_IPV4

    LENGTH = 14

    def __post_init__(self) -> None:
        self.dst = MacAddress(self.dst)
        self.src = MacAddress(self.src)
        if not 0 <= self.ethertype <= 0xFFFF:
            raise HeaderError(f"ethertype out of range: {self.ethertype:#x}")

    def _pack(self) -> bytes:
        return _ETH_STRUCT.pack(
            self.dst.to_bytes(), self.src.to_bytes(), self.ethertype
        )

    @classmethod
    def unpack(cls, data: bytes) -> "EthernetHeader":
        if len(data) < cls.LENGTH:
            raise HeaderError(f"short Ethernet header: {len(data)} bytes")
        raw = data[: cls.LENGTH]
        dst, src, ethertype = _ETH_STRUCT.unpack(raw)
        # Direct __dict__ fill: skips the cache-invalidation __setattr__ and
        # __post_init__ revalidation — every field is width-limited by the
        # wire format itself.
        header = object.__new__(cls)
        header.__dict__.update(
            dst=MacAddress.from_bytes(dst),
            src=MacAddress.from_bytes(src),
            ethertype=ethertype,
            _packed=raw,
        )
        return header

    @property
    def byte_len(self) -> int:
        return self.LENGTH


_checksum_cache: dict = {}


def ipv4_checksum(header_bytes: bytes) -> int:
    """Compute the RFC 1071 one's-complement checksum over *header_bytes*.

    The checksum field itself must be zeroed in the input.  Results are
    memoized by input bytes (bounded), since the verify path recomputes
    the checksum of identical headers once per hop.
    """
    cached = _checksum_cache.get(header_bytes)
    if cached is not None:
        return cached
    data = header_bytes
    if len(data) % 2:
        data += b"\x00"
    if len(data) == 20:
        total = sum(_WORDS_10.unpack(data))
    else:
        total = 0
        for (word,) in struct.iter_unpack("!H", data):
            total += word
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    result = (~total) & 0xFFFF
    if len(_checksum_cache) >= 8192:
        _checksum_cache.clear()
    _checksum_cache[header_bytes] = result
    return result


@dataclass
class Ipv4Header(CachedPackMixin):
    """IPv4 header (20 bytes, no options).

    ``total_length`` covers the IPv4 header plus everything after it; the
    packet layer keeps it consistent automatically when packing.
    """

    src: Ipv4Address
    dst: Ipv4Address
    protocol: int = 17  # UDP
    total_length: int = 20
    ttl: int = 64
    dscp: int = 0
    ecn: int = 0
    identification: int = 0
    flags: int = 0b010  # don't fragment
    fragment_offset: int = 0

    LENGTH = 20
    PROTO_UDP = 17
    PROTO_TCP = 6

    def __post_init__(self) -> None:
        self.src = Ipv4Address(self.src)
        self.dst = Ipv4Address(self.dst)
        for name, value, limit in (
            ("protocol", self.protocol, 0xFF),
            ("total_length", self.total_length, 0xFFFF),
            ("ttl", self.ttl, 0xFF),
            ("dscp", self.dscp, 0x3F),
            ("ecn", self.ecn, 0x3),
            ("identification", self.identification, 0xFFFF),
            ("flags", self.flags, 0x7),
            ("fragment_offset", self.fragment_offset, 0x1FFF),
        ):
            if not 0 <= value <= limit:
                raise HeaderError(f"IPv4 {name} out of range: {value}")

    def _pack(self) -> bytes:
        version_ihl = (4 << 4) | 5
        tos = (self.dscp << 2) | self.ecn
        flags_frag = (self.flags << 13) | self.fragment_offset
        src = self.src.value
        dst = self.dst.value
        # RFC 1071 checksum computed arithmetically from the fields — no
        # intermediate zero-checksum serialization.
        total = (
            (version_ihl << 8 | tos)
            + self.total_length
            + self.identification
            + flags_frag
            + (self.ttl << 8 | self.protocol)
            + (src >> 16)
            + (src & 0xFFFF)
            + (dst >> 16)
            + (dst & 0xFFFF)
        )
        while total >> 16:
            total = (total & 0xFFFF) + (total >> 16)
        checksum = (~total) & 0xFFFF
        return _IPV4_STRUCT.pack(
            version_ihl,
            tos,
            self.total_length,
            self.identification,
            flags_frag,
            self.ttl,
            self.protocol,
            checksum,
            self.src.to_bytes(),
            self.dst.to_bytes(),
        )

    @classmethod
    def unpack(cls, data: bytes) -> "Ipv4Header":
        if len(data) < cls.LENGTH:
            raise HeaderError(f"short IPv4 header: {len(data)} bytes")
        raw = data[: cls.LENGTH]
        (
            version_ihl,
            tos,
            total_length,
            identification,
            flags_frag,
            ttl,
            protocol,
            checksum,
            src,
            dst,
        ) = _IPV4_STRUCT.unpack(raw)
        version = version_ihl >> 4
        ihl = version_ihl & 0xF
        if version != 4:
            raise HeaderError(f"not an IPv4 header (version={version})")
        if ihl != 5:
            raise HeaderError(f"IPv4 options unsupported (ihl={ihl})")
        verify = raw[:10] + b"\x00\x00" + raw[12:]
        expected = ipv4_checksum(verify)
        if checksum != expected:
            raise HeaderError(
                f"bad IPv4 checksum: {checksum:#06x} != {expected:#06x}"
            )
        # Direct __dict__ fill (see EthernetHeader.unpack): wire-masked
        # fields cannot be out of range.
        header = object.__new__(cls)
        header.__dict__.update(
            src=Ipv4Address.from_bytes(src),
            dst=Ipv4Address.from_bytes(dst),
            protocol=protocol,
            total_length=total_length,
            ttl=ttl,
            dscp=tos >> 2,
            ecn=tos & 0x3,
            identification=identification,
            flags=flags_frag >> 13,
            fragment_offset=flags_frag & 0x1FFF,
            _packed=raw,
        )
        return header

    @property
    def byte_len(self) -> int:
        return self.LENGTH


@dataclass
class UdpHeader(CachedPackMixin):
    """UDP header (8 bytes).

    The checksum is carried verbatim; RoCEv2 sets it to zero, which is legal
    for UDP over IPv4 and what real RNICs emit.
    """

    src_port: int
    dst_port: int
    length: int = 8
    checksum: int = 0

    LENGTH = 8

    def __post_init__(self) -> None:
        for name, value in (
            ("src_port", self.src_port),
            ("dst_port", self.dst_port),
            ("length", self.length),
            ("checksum", self.checksum),
        ):
            if not 0 <= value <= 0xFFFF:
                raise HeaderError(f"UDP {name} out of range: {value}")

    def _pack(self) -> bytes:
        return _UDP_STRUCT.pack(
            self.src_port, self.dst_port, self.length, self.checksum
        )

    @classmethod
    def unpack(cls, data: bytes) -> "UdpHeader":
        if len(data) < cls.LENGTH:
            raise HeaderError(f"short UDP header: {len(data)} bytes")
        raw = data[: cls.LENGTH]
        src_port, dst_port, length, checksum = _UDP_STRUCT.unpack(raw)
        header = object.__new__(cls)
        header.__dict__.update(
            src_port=src_port,
            dst_port=dst_port,
            length=length,
            checksum=checksum,
            _packed=raw,
        )
        return header

    @property
    def byte_len(self) -> int:
        return self.LENGTH
