"""Transmit-queue policies used by interfaces and switch ports.

A queue decides whether an offered packet is admitted (drop-tail on byte
capacity by default) and hands packets back to the transmitting interface in
FIFO order.  Switch traffic managers build richer policies (shared buffer
pools, PFC pause) on top of the same interface.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Optional

from .packet import Packet


class TxQueue:
    """FIFO drop-tail queue bounded by bytes (and optionally packets).

    ``capacity_bytes=None`` means unbounded, which is what host NICs use in
    the simulation (the host paces itself); switch ports always bound it.
    """

    def __init__(
        self,
        capacity_bytes: Optional[int] = None,
        capacity_packets: Optional[int] = None,
    ) -> None:
        self.capacity_bytes = capacity_bytes
        self.capacity_packets = capacity_packets
        self._queue: Deque[Packet] = deque()
        self._depth_bytes = 0
        self.enqueued_packets = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0

    # -- admission ---------------------------------------------------------------

    def admits(self, packet: Packet) -> bool:
        """Would *packet* be admitted right now?  (No side effects.)"""
        if (
            self.capacity_packets is not None
            and len(self._queue) + 1 > self.capacity_packets
        ):
            return False
        if (
            self.capacity_bytes is not None
            and self._depth_bytes + packet.buffer_len > self.capacity_bytes
        ):
            return False
        return True

    def offer(self, packet: Packet) -> bool:
        """Enqueue *packet*; returns False (and counts a drop) if full."""
        if not self.admits(packet):
            self.dropped_packets += 1
            self.dropped_bytes += packet.buffer_len
            return False
        self._queue.append(packet)
        self._depth_bytes += packet.buffer_len
        self.enqueued_packets += 1
        return True

    def offer_many(self, packets: Iterable[Packet]) -> int:
        """Offer each packet in order; returns how many were admitted.

        Per-packet admission (not all-or-nothing): a batch delivered in one
        callback must fill the queue exactly as the same packets offered one
        at a time would, including which tail packets get dropped.
        """
        admitted = 0
        queue = self._queue
        for packet in packets:
            if not self.admits(packet):
                self.dropped_packets += 1
                self.dropped_bytes += packet.buffer_len
                continue
            queue.append(packet)
            self._depth_bytes += packet.buffer_len
            self.enqueued_packets += 1
            admitted += 1
        return admitted

    def poll(self) -> Optional[Packet]:
        """Dequeue the next packet, or None if empty."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._depth_bytes -= packet.buffer_len
        return packet

    def peek(self) -> Optional[Packet]:
        return self._queue[0] if self._queue else None

    # -- introspection -------------------------------------------------------------

    @property
    def depth_bytes(self) -> int:
        return self._depth_bytes

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        # A queue object is truthy even when empty; use len() for emptiness.
        return True

    def __repr__(self) -> str:
        cap = "inf" if self.capacity_bytes is None else str(self.capacity_bytes)
        return (
            f"<TxQueue {len(self._queue)}p/{self._depth_bytes}B cap={cap}B "
            f"drops={self.dropped_packets}>"
        )
