"""Point-to-point duplex links.

Serialization happens at the transmitting :class:`~repro.net.node.Interface`
(one packet on the wire at a time per direction); the link adds propagation
delay and delivers to the peer.  Links may also inject loss or corruption
for the §7 drop-sensitivity experiments.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from ..sim.simulator import Simulator
from .node import Interface
from .packet import Packet


class Link:
    """A full-duplex point-to-point link between two interfaces."""

    def __init__(
        self,
        sim: Simulator,
        a: Interface,
        b: Interface,
        rate_bps: float,
        propagation_ns: float = 250.0,
        loss_probability: float = 0.0,
        loss_rng: Optional[random.Random] = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError(f"loss probability out of range: {loss_probability}")
        self.sim = sim
        self.a = a
        self.b = b
        self.rate_bps = rate_bps
        self.propagation_ns = propagation_ns
        self.loss_probability = loss_probability
        self._loss_rng = loss_rng if loss_rng is not None else random.Random(0)
        self.lost_packets = 0
        #: Taps fired as tap(src_interface, packet) when a packet enters the wire.
        self.taps: List[Callable[[Interface, Packet], None]] = []
        #: Optional :class:`~repro.faults.injectors.LinkFaultInjector`; when
        #: set it takes over delivery scheduling, applying its armed fault
        #: models (loss, reorder, duplicate, jitter, corrupt) to each carry.
        self.fault_injector = None
        a.link = self
        b.link = self

    def peer_of(self, interface: Interface) -> Interface:
        if interface is self.a:
            return self.b
        if interface is self.b:
            return self.a
        raise ValueError(f"{interface} is not attached to {self}")

    def carry(self, src: Interface, packet: Packet) -> None:
        """Propagate *packet* from *src* to the opposite interface."""
        dst = self.peer_of(src)
        for tap in self.taps:
            tap(src, packet)
        if self.loss_probability > 0.0 and self._loss_rng.random() < self.loss_probability:
            self.lost_packets += 1
            return
        if self.fault_injector is not None:
            self.fault_injector.carry(self, src, packet)
            return
        self.sim.schedule(self.propagation_ns, dst.deliver, packet)

    def __repr__(self) -> str:
        return (
            f"<Link {self.a.node.name}:{self.a.name} <-> "
            f"{self.b.node.name}:{self.b.name} {self.rate_bps / 1e9:.0f}Gbps>"
        )


def connect(
    sim: Simulator,
    a: Interface,
    b: Interface,
    rate_bps: float,
    propagation_ns: float = 250.0,
    **kwargs: object,
) -> Link:
    """Convenience wrapper: build a :class:`Link` joining *a* and *b*."""
    return Link(sim, a, b, rate_bps, propagation_ns=propagation_ns, **kwargs)
