"""Point-to-point duplex links.

Serialization happens at the transmitting :class:`~repro.net.node.Interface`
(one packet on the wire at a time per direction); the link adds propagation
delay and delivers to the peer.  Links may also inject loss or corruption
for the §7 drop-sensitivity experiments.

Fast-path note: an idle link (no taps, zero loss, no fault injector) is by
far the common case, and ``carry`` runs once per packet per hop.  Rather
than re-checking all three conditions per packet, the link precomputes one
``_fast`` flag and invalidates it whenever any of the three change —
``taps`` is an observed list (:class:`_TapList`), and ``loss_probability``
/ ``fault_injector`` are properties.  The fast path is then a single flag
test plus a fire-and-forget :meth:`~repro.sim.simulator.Simulator.post_delivery`,
which the batch kernel can coalesce into one callback per same-instant
cohort.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from ..sim.simulator import Simulator
from .node import Interface
from .packet import Packet


class _TapList(list):
    """A tap list that tells its owning link when it changes."""

    __slots__ = ("_owner",)

    def __init__(self, owner: "Link") -> None:
        super().__init__()
        self._owner = owner

    def _changed(self) -> None:
        self._owner._refresh_fast_path()

    def append(self, tap):  # type: ignore[override]
        super().append(tap)
        self._changed()

    def extend(self, taps):  # type: ignore[override]
        super().extend(taps)
        self._changed()

    def insert(self, index, tap):  # type: ignore[override]
        super().insert(index, tap)
        self._changed()

    def remove(self, tap):  # type: ignore[override]
        super().remove(tap)
        self._changed()

    def pop(self, index=-1):  # type: ignore[override]
        tap = super().pop(index)
        self._changed()
        return tap

    def clear(self):  # type: ignore[override]
        super().clear()
        self._changed()

    def __setitem__(self, index, value):  # type: ignore[override]
        super().__setitem__(index, value)
        self._changed()

    def __delitem__(self, index):  # type: ignore[override]
        super().__delitem__(index)
        self._changed()

    def __iadd__(self, taps):  # type: ignore[override]
        super().extend(taps)
        self._changed()
        return self


class Link:
    """A full-duplex point-to-point link between two interfaces."""

    def __init__(
        self,
        sim: Simulator,
        a: Interface,
        b: Interface,
        rate_bps: float,
        propagation_ns: float = 250.0,
        loss_probability: float = 0.0,
        loss_rng: Optional[random.Random] = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError(f"loss probability out of range: {loss_probability}")
        self.sim = sim
        self.a = a
        self.b = b
        self.rate_bps = rate_bps
        self.propagation_ns = propagation_ns
        self._loss_probability = loss_probability
        self._loss_rng = loss_rng if loss_rng is not None else random.Random(0)
        self.lost_packets = 0
        #: Taps fired as tap(src_interface, packet) when a packet enters the
        #: wire.  Mutations (append/remove/...) refresh the fast-path flag.
        self.taps: List[Callable[[Interface, Packet], None]] = _TapList(self)
        self._fault_injector = None
        self._fast = loss_probability == 0.0
        a.link = self
        b.link = self

    # -- fast-path bookkeeping -------------------------------------------------

    def _refresh_fast_path(self) -> None:
        self._fast = (
            not self.taps
            and self._loss_probability == 0.0
            and self._fault_injector is None
        )

    @property
    def loss_probability(self) -> float:
        return self._loss_probability

    @loss_probability.setter
    def loss_probability(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"loss probability out of range: {probability}")
        self._loss_probability = probability
        self._refresh_fast_path()

    @property
    def fault_injector(self):
        """Optional :class:`~repro.faults.injectors.LinkFaultInjector`; when
        set it takes over delivery scheduling, applying its armed fault
        models (loss, reorder, duplicate, jitter, corrupt) to each carry."""
        return self._fault_injector

    @fault_injector.setter
    def fault_injector(self, injector) -> None:
        self._fault_injector = injector
        self._refresh_fast_path()

    # -- data path -------------------------------------------------------------

    def peer_of(self, interface: Interface) -> Interface:
        if interface is self.a:
            return self.b
        if interface is self.b:
            return self.a
        raise ValueError(f"{interface} is not attached to {self}")

    def carry(self, src: Interface, packet: Packet) -> None:
        """Propagate *packet* from *src* to the opposite interface."""
        if self._fast:
            if src is self.a:
                dst = self.b
            elif src is self.b:
                dst = self.a
            else:
                raise ValueError(f"{src} is not attached to {self}")
            self.sim.post_delivery(self.propagation_ns, dst, packet)
            return
        self._carry_slow(src, packet)

    def _carry_slow(self, src: Interface, packet: Packet) -> None:
        dst = self.peer_of(src)
        for tap in self.taps:
            tap(src, packet)
        if (
            self._loss_probability > 0.0
            and self._loss_rng.random() < self._loss_probability
        ):
            self.lost_packets += 1
            return
        if self._fault_injector is not None:
            self._fault_injector.carry(self, src, packet)
            return
        self.sim.post_delivery(self.propagation_ns, dst, packet)

    def __repr__(self) -> str:
        return (
            f"<Link {self.a.node.name}:{self.a.name} <-> "
            f"{self.b.node.name}:{self.b.name} {self.rate_bps / 1e9:.0f}Gbps>"
        )


def connect(
    sim: Simulator,
    a: Interface,
    b: Interface,
    rate_bps: float,
    propagation_ns: float = 250.0,
    **kwargs: object,
) -> Link:
    """Convenience wrapper: build a :class:`Link` joining *a* and *b*."""
    return Link(sim, a, b, rate_bps, propagation_ns=propagation_ns, **kwargs)
