"""MAC and IPv4 address value types.

Addresses are thin immutable wrappers around integers with parsing and
formatting, so they hash cheaply (table keys), compare naturally, and
serialize without string munging at packet-codec call sites.
"""

from __future__ import annotations

from typing import Union


class MacAddress:
    """A 48-bit Ethernet MAC address."""

    __slots__ = ("value",)

    BROADCAST_VALUE = (1 << 48) - 1

    def __init__(self, value: Union[int, str, "MacAddress"]) -> None:
        if isinstance(value, MacAddress):
            value = value.value
        elif isinstance(value, str):
            parts = value.replace("-", ":").split(":")
            if len(parts) != 6:
                raise ValueError(f"malformed MAC address: {value!r}")
            value = 0
            for part in parts:
                byte = int(part, 16)
                if not 0 <= byte <= 0xFF:
                    raise ValueError(f"malformed MAC address octet: {part!r}")
                value = (value << 8) | byte
        if not 0 <= value < (1 << 48):
            raise ValueError(f"MAC address out of range: {value:#x}")
        object.__setattr__(self, "value", value)

    def __setattr__(self, name: str, val: object) -> None:
        raise AttributeError("MacAddress is immutable")

    # Immutable: copying returns the same object.
    def __copy__(self) -> "MacAddress":
        return self

    def __deepcopy__(self, memo: dict) -> "MacAddress":
        return self

    @classmethod
    def broadcast(cls) -> "MacAddress":
        """Return the all-ones broadcast address ff:ff:ff:ff:ff:ff."""
        return cls(cls.BROADCAST_VALUE)

    @classmethod
    def from_bytes(cls, data: bytes) -> "MacAddress":
        if len(data) != 6:
            raise ValueError(f"MAC address needs 6 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(6, "big")

    @property
    def is_broadcast(self) -> bool:
        return self.value == self.BROADCAST_VALUE

    @property
    def is_multicast(self) -> bool:
        """True when the group bit (LSB of the first octet) is set."""
        return bool((self.value >> 40) & 0x01)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (MacAddress, int, str)):
            try:
                return self.value == MacAddress(other).value
            except (ValueError, TypeError):
                return NotImplemented
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("mac", self.value))

    def __str__(self) -> str:
        octets = self.to_bytes()
        return ":".join(f"{b:02x}" for b in octets)

    def __repr__(self) -> str:
        return f"MacAddress('{self}')"


class Ipv4Address:
    """A 32-bit IPv4 address."""

    __slots__ = ("value",)

    def __init__(self, value: Union[int, str, "Ipv4Address"]) -> None:
        if isinstance(value, Ipv4Address):
            value = value.value
        elif isinstance(value, str):
            parts = value.split(".")
            if len(parts) != 4:
                raise ValueError(f"malformed IPv4 address: {value!r}")
            value = 0
            for part in parts:
                octet = int(part)
                if not 0 <= octet <= 255:
                    raise ValueError(f"malformed IPv4 octet: {part!r}")
                value = (value << 8) | octet
        if not 0 <= value < (1 << 32):
            raise ValueError(f"IPv4 address out of range: {value:#x}")
        object.__setattr__(self, "value", value)

    def __setattr__(self, name: str, val: object) -> None:
        raise AttributeError("Ipv4Address is immutable")

    # Immutable: copying returns the same object.
    def __copy__(self) -> "Ipv4Address":
        return self

    def __deepcopy__(self, memo: dict) -> "Ipv4Address":
        return self

    @classmethod
    def from_bytes(cls, data: bytes) -> "Ipv4Address":
        if len(data) != 4:
            raise ValueError(f"IPv4 address needs 4 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(4, "big")

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (Ipv4Address, int, str)):
            try:
                return self.value == Ipv4Address(other).value
            except (ValueError, TypeError):
                return NotImplemented
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("ipv4", self.value))

    def __str__(self) -> str:
        octets = self.to_bytes()
        return ".".join(str(b) for b in octets)

    def __repr__(self) -> str:
        return f"Ipv4Address('{self}')"
