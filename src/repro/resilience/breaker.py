"""Per-channel circuit breaker: closed → open → half-open, with hysteresis.

The fault subsystem (DESIGN.md §10) made failure injectable and gave every
layer *local* recovery — go-back-N, same-PSN retransmission, watchdogs.
What it did not give is a *policy*: a primitive whose channel is dead
keeps retransmitting into the void forever, burning its watchdog budget
one timeout at a time.  The breaker is that policy, the classic pattern
from RDCA-style production RDMA operations: trip on accumulated stall
evidence, stop driving the wire, probe on a timer, and only resume once
a probe proves the path back.

The breaker consumes the exact event vocabulary the cluster
:class:`~repro.cluster.health.HealthMonitor` already consumes — ``nak``
/ ``strike`` / ``timeout`` / ``progress`` from
:class:`~repro.core.rocegen.RoceRequestGenerator` health listeners, plus
``retries_exhausted`` from :attr:`~repro.rdma.rnic.Rnic.on_retry_exhausted`
— so anything that can feed the monitor can feed a breaker.  The same
hysteresis rule applies: NAKs alone never trip it (one loss event NAK-
storms, and a channel that resyncs and makes progress is healthy); only
*consecutive* strikes/timeouts with no progress in between do.

State machine (DESIGN.md §11)::

            consecutive failures >= fail_threshold
    CLOSED ------------------------------------------> OPEN
      ^                                                  |
      |  successes >= close_threshold                    |  open_timeout
      |                                                  |  (+ seeded jitter,
      |        failure or probe_timeout                  |   backoff on every
    HALF-OPEN <------------------------------------------+   failed probe)
      |                 |
      +-----------------+--> back to OPEN

All timing rides the simulator clock and all jitter comes from the RNG
handed in at construction (derive it from a
:class:`~repro.sim.rng.SeedSequence` stream), so a run containing
breaker trips replays byte-identically from its seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..core.rocegen import RoceRequestGenerator
from ..obs.trace import KIND_BREAKER
from ..sim.simulator import Simulator

#: Breaker states (stringly-typed on purpose: they appear verbatim in
#: trace events and metric snapshots).
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

_STATE_CODES = {BREAKER_CLOSED: 0, BREAKER_OPEN: 1, BREAKER_HALF_OPEN: 2}

#: Events that count as stall evidence (the monitor's rule, extended with
#: the requester-side terminal verdict).
_FAILURE_EVENTS = ("strike", "timeout", "retries_exhausted")

BreakerCallback = Callable[["CircuitBreaker"], None]


@dataclass
class CircuitBreakerConfig:
    """Thresholds and pacing of one channel's breaker."""

    #: Consecutive stall events (strike / timeout / retries_exhausted,
    #: no progress in between) that trip a closed breaker open.
    fail_threshold: int = 3
    #: Progress events required in half-open before the breaker re-closes
    #: (the closing half of the hysteresis; 1 = first probe response wins).
    close_threshold: int = 1
    #: How long an open breaker waits before probing (half-open).
    open_timeout_ns: float = 200_000.0
    #: Seeded uniform jitter added to every open wait, so a fleet of
    #: breakers tripped by one outage does not probe in lockstep.
    probe_jitter_ns: float = 20_000.0
    #: Half-open must see progress within this window or the probe is
    #: declared failed and the breaker re-opens.
    probe_timeout_ns: float = 100_000.0
    #: Multiplier on the open wait after every failed probe (capped by
    #: ``max_open_timeout_ns``); a fresh trip from closed resets it.
    backoff: float = 2.0
    max_open_timeout_ns: float = 5_000_000.0

    def validate(self) -> None:
        if self.fail_threshold < 1:
            raise ValueError("fail_threshold must be >= 1")
        if self.close_threshold < 1:
            raise ValueError("close_threshold must be >= 1")
        if self.open_timeout_ns <= 0 or self.probe_timeout_ns <= 0:
            raise ValueError("breaker timeouts must be positive")
        if self.probe_jitter_ns < 0:
            raise ValueError("probe_jitter_ns must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")


class CircuitBreaker:
    """Stall-evidence state machine for one RDMA channel.

    Feed it events directly (:meth:`record`) or chain it onto the
    existing health hooks (:meth:`watch` / :meth:`watch_requester`).
    State-change subscribers register on :attr:`on_open`,
    :attr:`on_half_open` and :attr:`on_close`; the
    :class:`~repro.resilience.guard.SelfHealingChannel` wires those to a
    primitive's degraded mode and the controller's QP reconnect.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config: Optional[CircuitBreakerConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.config = config if config is not None else CircuitBreakerConfig()
        self.config.validate()
        # Seeded probe jitter: callers pass a SeedSequence stream; the
        # fallback is a fixed-seed Random so an unconfigured breaker is
        # still deterministic (never wall-clock entropy).
        self.rng = rng if rng is not None else random.Random(0)
        self.state = BREAKER_CLOSED
        self.on_open: List[BreakerCallback] = []
        self.on_half_open: List[BreakerCallback] = []
        self.on_close: List[BreakerCallback] = []
        self._failures = 0
        self._successes = 0
        self._current_open_timeout = self.config.open_timeout_ns
        # Monotone epoch guarding scheduled callbacks: any transition
        # bumps it, so a stale half-open timer or probe watchdog from a
        # previous episode is a no-op when it fires.
        self._epoch = 0
        self._opened_at: Optional[float] = None
        # Terminal stand-down: a disarmed breaker ignores every event and
        # never transitions again (see :meth:`disarm`).
        self._disarmed = False
        obs = sim.obs
        self.metrics = obs.registry.unique_scope(
            f"resilience.breaker[{name}]"
        )
        self._m_opens = self.metrics.counter("opens")
        self._m_half_opens = self.metrics.counter("half_opens")
        self._m_closes = self.metrics.counter("closes")
        self._m_probe_failures = self.metrics.counter("probe_failures")
        self._m_suppressed = self.metrics.counter("events_while_open")
        self._m_degraded_ns = self.metrics.counter("degraded_ns")
        self.metrics.gauge("state", fn=lambda: _STATE_CODES[self.state])
        self.metrics.gauge("consecutive_failures", fn=lambda: self._failures)
        self._trace = obs.trace
        self._trace_node = f"breaker:{name}"

    # -- convenience state tests ------------------------------------------------

    @property
    def is_closed(self) -> bool:
        return self.state == BREAKER_CLOSED

    @property
    def is_open(self) -> bool:
        return self.state == BREAKER_OPEN

    @property
    def is_half_open(self) -> bool:
        return self.state == BREAKER_HALF_OPEN

    @property
    def degraded_ns(self) -> float:
        """Total simulated time spent non-closed (running total)."""
        total = float(self._m_degraded_ns.value)
        if self._opened_at is not None:
            total += self.sim.now - self._opened_at
        return total

    @property
    def opens(self) -> int:
        return self._m_opens.value

    @property
    def closes(self) -> int:
        return self._m_closes.value

    @property
    def probe_failures(self) -> int:
        return self._m_probe_failures.value

    @property
    def disarmed(self) -> bool:
        return self._disarmed

    def disarm(self) -> None:
        """Stand this breaker down permanently.

        An open breaker on a channel that will *never* come back — its
        member was declared dead and failed out of the pool — would
        otherwise probe forever: every half-open probe times out, re-trips
        with backoff, and schedules the next attempt.  ``disarm`` is the
        terminal exit: pending timers are cancelled (epoch bump), future
        events are ignored, and the degraded-time ledger is closed out.
        The state is left as-is for post-mortem inspection.
        """
        if self._disarmed:
            return
        self._disarmed = True
        self._epoch += 1  # cancels any scheduled half-open / probe check
        if self._opened_at is not None:
            self._m_degraded_ns.inc(int(self.sim.now - self._opened_at))
            self._opened_at = None

    # -- wiring -----------------------------------------------------------------

    def watch(self, rocegen: RoceRequestGenerator) -> None:
        """Chain onto *rocegen*'s health events (monitor-style chaining)."""
        previous = rocegen.health_listener

        def listen(gen: RoceRequestGenerator, event: str) -> None:
            if previous is not None:
                previous(gen, event)
            self.record(event)

        rocegen.health_listener = listen

    def watch_requester(self, rnic) -> None:
        """Chain onto *rnic*'s retry-exhaustion verdicts."""
        previous = rnic.on_retry_exhausted

        def exhausted(qp) -> None:
            if previous is not None:
                previous(qp)
            self.record("retries_exhausted")

        rnic.on_retry_exhausted = exhausted

    # -- event intake -----------------------------------------------------------

    def record(self, event: str) -> None:
        """Feed one health event into the state machine."""
        if self._disarmed:
            return  # late responses on a stood-down channel are noise
        if event == "nak":
            return  # a NAK alone is evidence of *loss*, not of a dead path
        if event == "progress":
            self._record_success()
            return
        if event not in _FAILURE_EVENTS:
            raise ValueError(f"unknown health event: {event!r}")
        self._record_failure()

    def _record_success(self) -> None:
        if self.state == BREAKER_CLOSED:
            self._failures = 0
        elif self.state == BREAKER_HALF_OPEN:
            self._successes += 1
            if self._successes >= self.config.close_threshold:
                self._close()
        # open: late responses from before the trip change nothing — only
        # a probe observed in half-open may close the breaker.

    def _record_failure(self) -> None:
        if self.state == BREAKER_CLOSED:
            self._failures += 1
            if self._failures >= self.config.fail_threshold:
                self.trip()
        elif self.state == BREAKER_HALF_OPEN:
            self._m_probe_failures.inc()
            self.trip()
        else:
            self._m_suppressed.inc()

    # -- transitions ------------------------------------------------------------

    def trip(self) -> None:
        """Open the breaker now (fired internally; public for operators)."""
        if self._disarmed or self.state == BREAKER_OPEN:
            return
        was = self.state
        if was == BREAKER_HALF_OPEN:
            # A failed probe backs the next attempt off; the wait resets
            # only when a fresh episode trips from closed.
            self._current_open_timeout = min(
                self._current_open_timeout * self.config.backoff,
                self.config.max_open_timeout_ns,
            )
        else:
            self._current_open_timeout = self.config.open_timeout_ns
            self._opened_at = self.sim.now
        self.state = BREAKER_OPEN
        self._failures = 0
        self._successes = 0
        self._m_opens.inc()
        self._transition_trace(was, BREAKER_OPEN)
        for callback in list(self.on_open):
            callback(self)
        self._epoch += 1
        delay = self._current_open_timeout + (
            self.rng.uniform(0.0, self.config.probe_jitter_ns)
            if self.config.probe_jitter_ns > 0
            else 0.0
        )
        self.sim.schedule(delay, self._go_half_open, self._epoch)

    def _go_half_open(self, epoch: int) -> None:
        # The disarmed check matters when disarm() ran inside this very
        # trip's on_open callbacks: the trip then still scheduled this
        # timer with a fresh epoch, so the epoch guard alone won't stop it.
        if epoch != self._epoch or self.state != BREAKER_OPEN or self._disarmed:
            return
        self.state = BREAKER_HALF_OPEN
        self._successes = 0
        self._m_half_opens.inc()
        self._transition_trace(BREAKER_OPEN, BREAKER_HALF_OPEN)
        for callback in list(self.on_half_open):
            callback(self)
        # Arm the probe watchdog only if a callback did not already
        # resolve the probe synchronously (possible under zero latency).
        if self.state == BREAKER_HALF_OPEN and epoch == self._epoch:
            self.sim.schedule(
                self.config.probe_timeout_ns, self._probe_check, epoch
            )

    def _probe_check(self, epoch: int) -> None:
        if epoch != self._epoch or self.state != BREAKER_HALF_OPEN:
            return
        # The canary got no response inside the window: the path is still
        # dead, and silence — unlike a NAK — is stall evidence.
        self._m_probe_failures.inc()
        self.trip()

    def _close(self) -> None:
        was = self.state
        self.state = BREAKER_CLOSED
        self._failures = 0
        self._successes = 0
        self._epoch += 1  # cancels any pending probe watchdog
        self._current_open_timeout = self.config.open_timeout_ns
        if self._opened_at is not None:
            self._m_degraded_ns.inc(int(self.sim.now - self._opened_at))
            self._opened_at = None
        self._m_closes.inc()
        self._transition_trace(was, BREAKER_CLOSED)
        for callback in list(self.on_close):
            callback(self)

    def _transition_trace(self, old: str, new: str) -> None:
        if self._trace is not None:
            self._trace.emit(
                self.sim.now,
                self._trace_node,
                0,
                KIND_BREAKER,
                channel=f"{old}->{new}",
            )

    def __repr__(self) -> str:
        return f"<CircuitBreaker {self.name!r} {self.state}>"
