"""SelfHealingChannel: one breaker wired to one channel and its primitive.

The :class:`~repro.resilience.breaker.CircuitBreaker` is pure policy —
it decides *when* a channel is dead and when to probe.  This module is
the glue that makes the decision actionable:

* breaker **opens** → the primitive enters its degraded mode
  (``primitive.degrade(channel)``): lookup serves cache + default
  action, state store accumulates locally, packet buffer passes
  traffic through.
* breaker goes **half-open** → the controller reconnects the QP pair
  (fresh QPN/PSN on the same region) and the primitive sends one probe
  op (``primitive.probe(channel)``) down the fresh QP.  The probe rides
  the primitive's own request generator, so its response flows back
  through the normal ``try_handle`` path and lands in the breaker as a
  ``progress`` event.
* breaker **closes** → the primitive reconciles and exits degraded mode
  (``primitive.recover(channel)``): the store reconciles suspended ops
  and flushes its backlog, the buffer drains the stranded ring.

All three primitives implement the same small protocol —
``degrade(channel)`` / ``probe(channel)`` / ``recover(channel)`` — so
the guard is primitive-agnostic.
"""

from __future__ import annotations

import random
from typing import List, Optional

from .._deprecation import warn_once
from ..core.channel import RdmaChannelController, RemoteMemoryChannel
from ..core.rocegen import RoceRequestGenerator
from .breaker import CircuitBreaker, CircuitBreakerConfig


class SelfHealingChannel:
    """Attach self-healing (breaker + reconnect + degraded mode) to a channel.

    Parameters
    ----------
    controller:
        The :class:`~repro.core.channel.RdmaChannelController` that owns
        *channel* (used for QP reconnect).
    channel:
        The channel to guard.
    primitive:
        The primitive using the channel; must implement
        ``degrade(channel)`` / ``probe(channel)`` / ``recover(channel)``.
    generators:
        Request generators whose health events should feed the breaker.
        Defaults to every generator the primitive exposes that rides
        *channel* (``rocegen`` plus ``rocegens`` / ``read_rocegens``
        entries).
    reconnect:
        When True (default), a half-open transition tears down and
        re-opens the QP pair before probing.  Set False to probe on the
        existing (possibly wedged) QPs — useful when the outage was in
        the fabric, not the endpoints.
    policy:
        A :class:`~repro.policies.breaker.BreakerPolicy` carrying the
        breaker's thresholds and seeded probe jitter — the unified
        ``(seed, metrics_scope)`` policy surface.  ``policy_seed`` is a
        shorthand that builds a default-threshold policy from a seed.
        The pre-unification ``config=`` / ``rng=`` kwargs still work but
        warn once; they cannot be combined with ``policy=``.
    """

    def __init__(
        self,
        controller: RdmaChannelController,
        channel: RemoteMemoryChannel,
        primitive,
        generators: Optional[List[RoceRequestGenerator]] = None,
        config: Optional[CircuitBreakerConfig] = None,
        rng: Optional[random.Random] = None,
        reconnect: bool = True,
        policy=None,
        policy_seed: Optional[int] = None,
    ) -> None:
        for method in ("degrade", "probe", "recover"):
            if not callable(getattr(primitive, method, None)):
                raise TypeError(
                    f"{type(primitive).__name__} does not implement "
                    f"{method}(channel); cannot self-heal"
                )
        if channel not in controller.channels:
            raise ValueError(f"channel {channel.name!r} is not open on this controller")
        if config is not None:
            warn_once(
                "SelfHealingChannel(config=...) is deprecated; pass "
                "policy=BreakerPolicy(config=...) (repro.policies)"
            )
        if rng is not None:
            warn_once(
                "SelfHealingChannel(rng=...) is deprecated; pass "
                "policy=BreakerPolicy(seed=...) or policy_seed="
            )
        self.controller = controller
        self.channel = channel
        self.primitive = primitive
        self.reconnect = reconnect
        sim = controller.switch.sim
        if policy is not None:
            if config is not None or rng is not None:
                raise ValueError(
                    "pass either policy= or the deprecated config=/rng=, "
                    "not both"
                )
            # Duck-typed BreakerPolicy (this module must not import
            # repro.policies: policies.breaker imports resilience.breaker).
            self.breaker = policy.build(sim, channel.name)
        elif policy_seed is not None:
            if rng is not None:
                raise ValueError("pass either policy_seed= or rng=, not both")
            self.breaker = CircuitBreaker(
                sim, channel.name, config=config,
                rng=random.Random(policy_seed),
            )
        else:
            self.breaker = CircuitBreaker(sim, channel.name, config=config, rng=rng)
        self.metrics = sim.obs.registry.unique_scope(
            f"resilience.guard[{channel.name}]"
        )
        self._m_reconnects = self.metrics.counter("reconnects")
        self._m_degrades = self.metrics.counter("degrades")
        self._m_recoveries = self.metrics.counter("recoveries")
        generators = (
            generators
            if generators is not None
            else self._default_generators(primitive, channel)
        )
        if not generators:
            raise ValueError(
                "no request generators found on the primitive for this "
                "channel; pass generators= explicitly"
            )
        for gen in generators:
            self.breaker.watch(gen)
        self.breaker.on_open.append(self._on_open)
        self.breaker.on_half_open.append(self._on_half_open)
        self.breaker.on_close.append(self._on_close)
        # Teardown of the guarded channel must also silence the breaker's
        # listeners — same rule the HealthMonitor follows.
        channel.teardown_callbacks.append(self._on_teardown)
        self._active = True

    @staticmethod
    def _default_generators(primitive, channel) -> List[RoceRequestGenerator]:
        found: List[RoceRequestGenerator] = []
        single = getattr(primitive, "rocegen", None)
        if single is not None and single.channel is channel:
            found.append(single)
        for attr in ("rocegens", "read_rocegens"):
            for gen in getattr(primitive, attr, []) or []:
                if gen.channel is channel and gen not in found:
                    found.append(gen)
        return found

    # -- breaker transitions ----------------------------------------------------

    def _on_open(self, breaker: CircuitBreaker) -> None:
        if not self._active:
            return
        self._m_degrades.inc()
        self.primitive.degrade(self.channel)

    def _on_half_open(self, breaker: CircuitBreaker) -> None:
        if not self._active:
            return
        if self.reconnect:
            self.controller.reconnect_channel(self.channel)
            self._m_reconnects.inc()
        self.primitive.probe(self.channel)

    def _on_close(self, breaker: CircuitBreaker) -> None:
        if not self._active:
            return
        self._m_recoveries.inc()
        self.primitive.recover(self.channel)

    def _on_teardown(self) -> None:
        # Channel gone for good: silence the callbacks *and* the breaker —
        # an open breaker left armed on a torn-down channel would probe
        # (and back off, and probe again) forever.
        self.stop()

    def stop(self) -> None:
        """Stand the guard down permanently (terminal).

        Callbacks stop firing and the breaker is disarmed: pending
        half-open timers are cancelled and no future event can reopen the
        episode.  Call when the guarded channel's member has been failed
        out of the pool (there is nothing left to heal), or rely on
        channel teardown to do it on graceful closes.
        """
        self._active = False
        self.breaker.disarm()

    @property
    def reconnects(self) -> int:
        return self._m_reconnects.value

    def __repr__(self) -> str:
        return (
            f"<SelfHealingChannel {self.channel.name!r} "
            f"breaker={self.breaker.state}>"
        )
