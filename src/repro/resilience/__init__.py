"""Self-healing channels: circuit breakers, QP reconnect, degraded modes.

See DESIGN.md §11.  The subsystem layers an end-to-end recovery policy
on top of the fault machinery from §10: a per-channel
:class:`CircuitBreaker` trips on accumulated stall evidence, the
:class:`SelfHealingChannel` guard reconnects the QP pair and drives the
owning primitive through its degraded mode, and every primitive
guarantees a reconciliation story (zero lost counter updates, in-order
stranded-packet drain, counted cache/default service).
"""

from .breaker import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    CircuitBreakerConfig,
)
from .guard import SelfHealingChannel

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "CircuitBreakerConfig",
    "SelfHealingChannel",
]
