"""The paper's contribution: remote-memory primitives for switch data planes.

Three data-plane primitives over an RDMA channel to server DRAM (§3–§4):

* :class:`RemotePacketBuffer` — extend an egress queue into a remote ring.
* :class:`RemoteLookupTable` — remote exact-match table with SRAM caching.
* :class:`RemoteStateStore` — remote counters via atomic Fetch-and-Add.

Plus the control plane that wires them up (:class:`RdmaChannelController`)
and the shared request generator (:class:`RoceRequestGenerator`).
"""

from .channel import ChannelError, RdmaChannelController, RemoteMemoryChannel
from .lookup_table import (
    ACTION_BYTES,
    ACTION_DROP,
    ACTION_NOP,
    ACTION_SET_DSCP,
    ACTION_SET_EGRESS,
    LookupTableConfig,
    LookupTableStats,
    RemoteAction,
    RemoteLookupTable,
    fingerprint_of,
)
from .packet_buffer import (
    PacketBufferConfig,
    PacketBufferStats,
    RemotePacketBuffer,
)
from .rocegen import RoceGenStats, RoceRequestGenerator
from .state_store import RemoteStateStore, StateStoreConfig, StateStoreStats

__all__ = [
    "ACTION_BYTES",
    "ACTION_DROP",
    "ACTION_NOP",
    "ACTION_SET_DSCP",
    "ACTION_SET_EGRESS",
    "ChannelError",
    "LookupTableConfig",
    "LookupTableStats",
    "PacketBufferConfig",
    "PacketBufferStats",
    "RdmaChannelController",
    "RemoteAction",
    "RemoteLookupTable",
    "RemoteMemoryChannel",
    "RemotePacketBuffer",
    "RemoteStateStore",
    "RoceGenStats",
    "RoceRequestGenerator",
    "StateStoreConfig",
    "StateStoreStats",
    "fingerprint_of",
]
