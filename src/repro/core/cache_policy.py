"""Deprecated shim: the cache policies moved to :mod:`repro.policies`.

The SRAM cache-policy family now lives in ``repro.policies.cache`` as
part of the unified policy surface (one ``(seed, metrics_scope)``
construction convention shared with placement and breaker policies).
Importing any name from this module keeps working but emits one
:class:`DeprecationWarning` per process; in-repo code must use the new
path (CI runs with ``-W error::DeprecationWarning``).
"""

from __future__ import annotations

from .._deprecation import warn_once
from ..policies import cache as _cache

_MOVED = (
    "CACHE_POLICIES",
    "CachePolicy",
    "FifoCachePolicy",
    "LfuCachePolicy",
    "LruCachePolicy",
    "PinningCachePolicy",
    "make_cache_policy",
)

__all__ = list(_MOVED)


def __getattr__(name: str):
    if name in _MOVED:
        warn_once(
            "repro.core.cache_policy is deprecated; import "
            f"{name} from repro.policies (or repro.api)"
        )
        return getattr(_cache, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def __dir__():
    return sorted(list(globals()) + list(_MOVED))
