"""The remote packet buffer primitive (§4).

Extends one egress queue's capacity into ring buffers in server DRAM:

* **Store** — when the protected egress queue exceeds a high watermark the
  primitive diverts arriving packets into the ring with RDMA WRITE, one
  full-sized Ethernet frame per ring entry.  Once diverting starts, *all*
  subsequent packets for that queue divert until the ring drains, so
  packets are never reordered (§4: "until all packets in remote buffer are
  read, the following new packets must also be written to the remote
  buffer and read out in order").
* **Load** — when the local queue drains to a low watermark the primitive
  issues RDMA READs for the head entries; each READ response is
  decapsulated and the original packet re-enters the egress queue, and the
  response also triggers the next READ while entries remain (§4's
  response-triggered chaining).

**Multiple servers.**  §2.1 buffers bursts "in one or multiple servers": a
line-rate N-to-1 incast overflows at up to (N-1)x the link rate, far more
than one server link absorbs.  The primitive therefore accepts a list of
channels and stripes ring entries round-robin over the *surviving*
channels.  Within a channel RC ordering keeps READ responses in issue
order, but responses interleave *across* channels, so completed entries
pass through a small reorder stage keyed by ring pointer before
re-entering the egress queue — preserving the paper's no-reordering
guarantee.

**Server failure (§7 robustness).**  With ``failover_strikes`` set, a
channel whose reads stall through that many consecutive go-back-N
recoveries is declared dead: its unread entries are abandoned (clean
losses, in order), new stores re-stripe over the survivors, and with no
survivors left the switch degrades gracefully to plain drop-tail.

Ring state (write/read pointers, mode flag) lives in data-plane register
arrays, exactly as the P4 prototype keeps it.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..net.headers import Ipv4Header
from ..net.packet import Packet
from ..rdma.constants import Opcode
from ..rdma.headers import BthHeader
from ..sim.units import kib, mib
from ..switches.pipeline import PipelineContext
from ..switches.registers import RegisterArray
from ..switches.switch import ProgrammableSwitch
from ..switches.traffic_manager import HookVerdict, PortQueue
from .channel import RemoteMemoryChannel
from .rocegen import RoceRequestGenerator

if TYPE_CHECKING:  # cluster imports core; break the cycle for typing
    from ..cluster.pool import MemoryPool, PoolMember

#: Register indices for the ring state.
_WRITE_PTR, _READ_PTR, _NEXT_LOAD_PTR, _BUFFERING = range(4)

#: Each ring entry is prefixed with its write pointer so a reader can tell
#: a fresh entry from stale bytes left by a lost RDMA WRITE (§7: "an RDMA
#: packet drop would lead to dropping the original packet" — the stamp
#: turns would-be duplication into that clean loss).
ENTRY_SEQ_BYTES = 8


@dataclass
class PacketBufferConfig:
    """Tuning of the remote packet buffer primitive."""

    #: Ring entry size; §4 allocates one full-sized Ethernet frame each
    #: (plus the sequence stamp).
    entry_bytes: int = 1600 + ENTRY_SEQ_BYTES
    #: Start diverting when the protected queue depth exceeds this.
    high_watermark_bytes: int = mib(8)
    #: Start loading back when the queue depth falls to or below this.
    low_watermark_bytes: int = kib(64)
    #: READ pipelining depth per channel (each response triggers the next
    #: READ; a small window keeps the return links busy).
    max_outstanding_reads: int = 4
    #: Request ACKs for WRITEs (reverse-path bandwidth vs. §7 reliability).
    ack_writes: bool = False
    #: Recovery timer for lost READs/responses: if no load progress within
    #: this window while reads are outstanding, restart the read chain
    #: (go-back-N).  None disables recovery (the paper's best-effort mode).
    read_timeout_ns: Optional[float] = None
    #: When True, loading never starts automatically; the experiment calls
    #: :meth:`RemotePacketBuffer.start_draining` (§5 "we manually start the
    #: two steps respectively" for the store/load microbenchmark).
    manual_load: bool = False
    #: §7 robustness: consecutive stalled recoveries on one channel before
    #: it is declared failed and excluded (its unread entries are lost,
    #: new stores re-stripe over the survivors).  None disables failover.
    failover_strikes: Optional[int] = None
    #: Co-design with end-to-end congestion control (§2.1): once this many
    #: entries sit unread in the remote rings, diverted ECT packets are
    #: CE-marked so ECN-reactive senders slow down — the remote buffer
    #: masks local queue depth from normal ECN marking, so *persistent*
    #: congestion must be signalled from ring occupancy instead.  None
    #: disables ring-occupancy marking.
    ecn_ring_threshold_entries: Optional[int] = None


@dataclass
class PacketBufferStats:
    stored_packets: int = 0
    stored_bytes: int = 0
    loaded_packets: int = 0
    loaded_bytes: int = 0
    ring_full_drops: int = 0
    oversize_drops: int = 0
    buffering_episodes: int = 0
    #: Entries whose stamp mismatched (their WRITE was lost in transit).
    lost_in_transit: int = 0
    #: Go-back-N read-chain recoveries.
    read_recoveries: int = 0
    #: Peak entries parked in the cross-channel reorder stage.
    reorder_peak: int = 0
    #: Channels declared failed (server/link death, §7 robustness).
    channels_failed: int = 0
    #: Entries abandoned because their channel failed before they were read.
    lost_to_failover: int = 0
    #: Diverted packets CE-marked because the ring crossed its ECN threshold.
    ecn_marked: int = 0


class RemotePacketBuffer:
    """Data-plane component protecting one egress queue with remote memory."""

    def __init__(
        self,
        switch: ProgrammableSwitch,
        channels: Union[RemoteMemoryChannel, Sequence[RemoteMemoryChannel]],
        protected_port: int,
        config: Optional[PacketBufferConfig] = None,
        read_channels: Optional[Sequence[RemoteMemoryChannel]] = None,
    ) -> None:
        """``read_channels`` (optional, one per write channel, sharing its
        region) carry the READ stream on dedicated queue pairs.  Use them
        whenever the traffic manager may reorder loads ahead of stores
        (e.g. READ prioritization): RC is in-order per QP, so reordering
        within one QP NAK-storms."""
        if isinstance(channels, RemoteMemoryChannel):
            channels = [channels]
        if not channels:
            raise ValueError("need at least one remote memory channel")
        for channel in channels:
            if protected_port == channel.server_port:
                raise ValueError(
                    "the protected port cannot be a memory-server port"
                )
        self.switch = switch
        self.channels = list(channels)
        self.protected_port = protected_port
        self.config = config if config is not None else PacketBufferConfig()
        #: This buffer's scope in the simulation's metric registry
        #: ("pktbuf[<port>]", suffixed on collision).
        self.metrics = switch.sim.obs.registry.unique_scope(
            f"pktbuf[{protected_port}]"
        )
        self._m_stored_packets = self.metrics.counter("stored_packets")
        self._m_stored_bytes = self.metrics.counter("stored_bytes")
        self._m_loaded_packets = self.metrics.counter("loaded_packets")
        self._m_loaded_bytes = self.metrics.counter("loaded_bytes")
        self._m_ring_full_drops = self.metrics.counter("ring_full_drops")
        self._m_oversize_drops = self.metrics.counter("oversize_drops")
        self._m_episodes = self.metrics.counter("buffering_episodes")
        self._m_lost_in_transit = self.metrics.counter("lost_in_transit")
        self._m_read_recoveries = self.metrics.counter("read_recoveries")
        self._m_reorder_peak = self.metrics.gauge("reorder_peak")
        self._m_channels_failed = self.metrics.counter("channels_failed")
        self._m_lost_to_failover = self.metrics.counter("lost_to_failover")
        self._m_ecn_marked = self.metrics.counter("ecn_marked")
        self._m_degraded_passthrough = self.metrics.counter(
            "degraded_passthrough"
        )
        self.metrics.gauge("stored_entries", fn=lambda: self.stored_entries)
        # Degraded mode (DESIGN.md §11): channels whose breaker is open.
        # While any are degraded the buffer stops diverting (new packets
        # pass straight through) and the load path stands down; recovery
        # drains the stranded ring contents in pointer order.
        self._degraded_channels: set = set()
        self.metrics.gauge(
            "degraded_channels", fn=lambda: len(self._degraded_channels)
        )
        self.rocegens = [
            RoceRequestGenerator(switch, channel) for channel in self.channels
        ]
        if read_channels is not None:
            read_channels = list(read_channels)
            if len(read_channels) != len(self.channels):
                raise ValueError("need one read channel per write channel")
            for write_ch, read_ch in zip(self.channels, read_channels):
                if (
                    read_ch.rkey != write_ch.rkey
                    or read_ch.server is not write_ch.server
                    or read_ch.base_address != write_ch.base_address
                ):
                    raise ValueError(
                        "read channels must share their write channel's region"
                    )
            self.read_channels = read_channels
            self.read_rocegens = [
                RoceRequestGenerator(switch, channel)
                for channel in read_channels
            ]
        else:
            self.read_channels = self.channels
            self.read_rocegens = self.rocegens
        self.entries_per_channel = min(
            channel.length // self.config.entry_bytes for channel in self.channels
        )
        if self.entries_per_channel <= 0:
            raise ValueError(
                f"smallest channel holds no {self.config.entry_bytes} B entries"
            )
        self.capacity_entries = self.entries_per_channel * len(self.channels)
        # Ring state in data-plane registers (48-bit: monotonically
        # increasing pointers, slot = ptr % capacity).
        self._regs = RegisterArray(f"pktbuf[{protected_port}]", 4, width_bits=48)
        self._outstanding_reads = 0
        self._watchdog_armed = False
        self._watchdog_snapshot = 0
        self._manual_drain_started = False
        # Per-channel FIFO of (ring pointer, PSN) for in-flight READs.
        # Responses must match their channel's head; anything else is a
        # stale response from a recovered chain.
        self._inflight: List[Deque[Tuple[int, int]]] = [
            deque() for _ in self.channels
        ]
        # Cross-channel reorder stage: completed entries by ring pointer.
        self._reorder: Dict[int, Optional[Packet]] = {}
        # Simulation bookkeeping: per-slot packet metadata survives the
        # store/load round trip (on the wire the full frame carries it).
        self._meta_by_index: Dict[int, dict] = {}
        # Striping state.  Each entry's channel and remote address are
        # recorded at store time (on hardware: an epoch register plus the
        # same pointer arithmetic, reconfigured by the control plane on
        # failover; here the mapping is explicit).
        self._entry_channel: Dict[int, int] = {}
        self._entry_address: Dict[int, int] = {}
        self._rr_cursor = 0
        self._channel_slot_counter = [0] * len(self.channels)
        self._channel_unread = [0] * len(self.channels)
        # §7 robustness: failure detection via consecutive stalled
        # recoveries per channel.
        self._channel_strikes = [0] * len(self.channels)
        self._failed_channels: set = set()
        # Gracefully leaving channels: excluded from striping but still
        # read until their unread entries drain (pool membership).
        self._draining_channels: set = set()
        # Pool mode (see from_pool): membership and health govern
        # failover instead of the private failover_strikes counter.
        self.pool: Optional["MemoryPool"] = None
        self._member_channel: Dict[str, int] = {}
        self._bytes_per_member = 0
        self.drain_poll_ns = 10_000.0
        self.drain_timeout_ns = 1_000_000.0
        # Entries whose WRITE request has left the switch (see _store).
        self._flushed: set = set()
        self._loading = False  # reentrancy guard for the load loop
        # Plug into the traffic manager.
        if switch.tm.egress_hook is not None:
            raise RuntimeError("switch TM already has an egress hook")
        switch.tm.egress_hook = self._egress_hook
        switch.tm.dequeue_listeners.append(self._on_dequeue)

    @property
    def tiers(self) -> List[str]:
        """Memory tier of each ring's backing channel (DESIGN.md §13).

        A buffer whose rings were placed with
        ``TieredMemoryPool.place_channel(..., tier="fast")`` stores and
        loads bursts with the RNIC's fast-tier service profile — the
        whole-object static pin the tiering design gives packet buffers
        (their access pattern is a ring sweep: block-granular promotion
        would thrash, so the ring is pinned as a unit).
        """
        return [channel.tier for channel in self.channels]

    @property
    def stats(self) -> PacketBufferStats:
        """Legacy stats shim: a snapshot of this buffer's metrics."""
        return PacketBufferStats(
            stored_packets=self._m_stored_packets.value,
            stored_bytes=self._m_stored_bytes.value,
            loaded_packets=self._m_loaded_packets.value,
            loaded_bytes=self._m_loaded_bytes.value,
            ring_full_drops=self._m_ring_full_drops.value,
            oversize_drops=self._m_oversize_drops.value,
            buffering_episodes=self._m_episodes.value,
            lost_in_transit=self._m_lost_in_transit.value,
            read_recoveries=self._m_read_recoveries.value,
            reorder_peak=self._m_reorder_peak.value,
            channels_failed=self._m_channels_failed.value,
            lost_to_failover=self._m_lost_to_failover.value,
            ecn_marked=self._m_ecn_marked.value,
        )

    # -- pool mode (cluster subsystem) ---------------------------------------------

    @classmethod
    def from_pool(
        cls,
        switch: ProgrammableSwitch,
        pool: "MemoryPool",
        protected_port: int,
        bytes_per_member: int,
        config: Optional[PacketBufferConfig] = None,
        separate_read_qps: bool = True,
    ) -> "RemotePacketBuffer":
        """Build a buffer striped over every alive pool member.

        The pool takes over the roles the constructor wires statically:
        members that join mid-run become stripe targets
        (:meth:`add_channel`), members the health monitor declares dead
        are failed over exactly as ``failover_strikes`` would, and
        graceful leaves drain their unread entries before the channels
        close.  ``bytes_per_member`` fixes an equal ring per server.
        """
        members = pool.alive_members
        if not members:
            raise ValueError("pool has no alive members")
        channels: List[RemoteMemoryChannel] = []
        read_channels: List[RemoteMemoryChannel] = []
        for member in members:
            channel = pool.open_channel(
                member, bytes_per_member, name=f"pktbuf:{member.name}"
            )
            channels.append(channel)
            if separate_read_qps:
                read_channels.append(
                    pool.open_channel(
                        member,
                        bytes_per_member,
                        name=f"pktbuf-read:{member.name}",
                        share_region_with=channel,
                    )
                )
        buffer = cls(
            switch,
            channels,
            protected_port,
            config=config,
            read_channels=read_channels if separate_read_qps else None,
        )
        buffer.pool = pool
        buffer._bytes_per_member = bytes_per_member
        buffer._member_channel = {
            member.name: idx for idx, member in enumerate(members)
        }
        for member in members:
            pool.watch(
                member, buffer.read_rocegens[buffer._member_channel[member.name]]
            )
        pool.listeners.append(buffer)
        return buffer

    def add_channel(
        self,
        channel: RemoteMemoryChannel,
        read_channel: Optional[RemoteMemoryChannel] = None,
    ) -> int:
        """Enroll another stripe target mid-run; returns its index.

        The new ring must hold at least as many entries as the existing
        ones (striping keeps slot geometry uniform across channels).
        """
        if channel.length // self.config.entry_bytes < self.entries_per_channel:
            raise ValueError(
                f"channel {channel.name!r} holds fewer than "
                f"{self.entries_per_channel} entries"
            )
        separate = self.read_channels is not self.channels
        if separate:
            if read_channel is None:
                raise ValueError(
                    "buffer uses separate read QPs; pass read_channel"
                )
            if (
                read_channel.rkey != channel.rkey
                or read_channel.server is not channel.server
                or read_channel.base_address != channel.base_address
            ):
                raise ValueError(
                    "read channel must share the write channel's region"
                )
        index = len(self.channels)
        self.channels.append(channel)
        self.rocegens.append(RoceRequestGenerator(self.switch, channel))
        if separate:
            self.read_channels.append(read_channel)
            self.read_rocegens.append(
                RoceRequestGenerator(self.switch, read_channel)
            )
        self._inflight.append(deque())
        self._channel_slot_counter.append(0)
        self._channel_unread.append(0)
        self._channel_strikes.append(0)
        self.capacity_entries = self.entries_per_channel * len(self.channels)
        return index

    def on_member_join(self, member: "PoolMember") -> None:
        channel = self.pool.open_channel(
            member, self._bytes_per_member, name=f"pktbuf:{member.name}"
        )
        read_channel = None
        if self.read_channels is not self.channels:
            read_channel = self.pool.open_channel(
                member,
                self._bytes_per_member,
                name=f"pktbuf-read:{member.name}",
                share_region_with=channel,
            )
        index = self.add_channel(channel, read_channel)
        self._member_channel[member.name] = index
        self.pool.watch(member, self.read_rocegens[index])

    def on_member_leave(self, member: "PoolMember", graceful: bool) -> None:
        index = self._member_channel.pop(member.name, None)
        if index is None:
            return
        if not graceful:
            self._abandon_channel(index)
            return
        # Stop striping to the leaver but keep reading its ring; hold its
        # channels open until the unread entries drain out.
        self._draining_channels.add(index)
        self.pool.hold_for_drain(member)
        self._drain_channel(
            member, index, deadline=self.switch.sim.now + self.drain_timeout_ns
        )

    def _abandon_channel(self, index: int) -> None:
        """Fail a channel outside the recovery path (member death)."""
        if index in self._failed_channels:
            return
        self._outstanding_reads = max(
            0, self._outstanding_reads - len(self._inflight[index])
        )
        self._fail_channel(index)
        # Entries stranded on the dead channel resolve as clean losses as
        # the read pointer sweeps them; kick the sweep now.
        self._maybe_start_loading(self.switch.port_queue(self.protected_port))

    def _drain_channel(
        self, member: "PoolMember", index: int, deadline: float
    ) -> None:
        if self._channel_unread[index] == 0 and not self._inflight[index]:
            self.pool.release_drain(member)
            return
        if self.switch.sim.now >= deadline:
            self._abandon_channel(index)
            self.pool.release_drain(member)
            return
        self.switch.sim.schedule(
            self.drain_poll_ns, self._drain_channel, member, index, deadline
        )

    # -- ring geometry -------------------------------------------------------------

    @property
    def stored_entries(self) -> int:
        return self._regs.read(_WRITE_PTR) - self._regs.read(_READ_PTR)

    @property
    def is_buffering(self) -> bool:
        return bool(self._regs.read(_BUFFERING))

    @property
    def alive_channels(self) -> List[int]:
        """Stripe targets: not failed, not draining out of the pool."""
        return [
            i for i in range(len(self.channels))
            if i not in self._failed_channels
            and i not in self._draining_channels
            and i not in self._degraded_channels
        ]

    def _assign_channel(self) -> Optional[int]:
        """Round-robin the next store over surviving channels.

        Returns None when no channel can take the entry (all failed, or
        every survivor's ring is full).
        """
        alive = self.alive_channels
        for _ in range(len(alive)):
            idx = alive[self._rr_cursor % len(alive)]
            self._rr_cursor += 1
            if self._channel_unread[idx] < self.entries_per_channel:
                return idx
        return None

    # -- store path ---------------------------------------------------------------

    def _egress_hook(
        self, port: int, packet: Packet, queue: PortQueue
    ) -> HookVerdict:
        if port != self.protected_port:
            return HookVerdict.PASS
        if self._degraded_channels:
            # Breaker open: stop diverting — a store into a dead channel
            # strands the packet.  Passing through trades order for
            # delivery; the trade-off is documented in DESIGN.md §11.
            if self.is_buffering:
                self._m_degraded_passthrough.inc()
            return HookVerdict.PASS
        if not self.is_buffering:
            if (
                queue.depth_bytes + packet.buffer_len
                <= self.config.high_watermark_bytes
            ):
                return HookVerdict.PASS
            # Queue built past the watermark: enter buffering mode.
            self._regs.write(_BUFFERING, 1)
            self._m_episodes.inc()
        self._store(packet, queue)
        return HookVerdict.CONSUMED

    def _store(self, packet: Packet, queue: PortQueue) -> None:
        threshold = self.config.ecn_ring_threshold_entries
        if threshold is not None and self.stored_entries >= threshold:
            ip = packet.find(Ipv4Header)
            if ip is not None and ip.ecn in (1, 2):
                ip.ecn = 3  # CE: the ring, not the port queue, is hot
                self._m_ecn_marked.inc()
        frame = packet.pack()
        if len(frame) > self.config.entry_bytes - ENTRY_SEQ_BYTES:
            self._m_oversize_drops.inc()
            return
        channel_idx = self._assign_channel()
        if channel_idx is None:
            # Remote rings exhausted — §2.1 argues O(10 GB) makes this
            # rare; when it happens the packet drops like any buffer drop.
            self._m_ring_full_drops.inc()
            return
        write_ptr = self._regs.read(_WRITE_PTR)
        slot = (
            self._channel_slot_counter[channel_idx] % self.entries_per_channel
        )
        self._channel_slot_counter[channel_idx] += 1
        address = (
            self.channels[channel_idx].base_address
            + slot * self.config.entry_bytes
        )
        entry = struct.pack("!Q", write_ptr) + frame
        # Loads must never outrun stores *inside the switch*: a READ that
        # jumps the server-port queue (e.g. under read prioritization)
        # would fetch the slot before its WRITE left the box.  The tag
        # lets the TM dequeue listener mark the entry flushed.
        self.rocegens[channel_idx].write(
            address,
            entry,
            ack_request=self.config.ack_writes,
            meta={"pktbuf_write_ptr": write_ptr},
        )
        self._entry_channel[write_ptr] = channel_idx
        self._entry_address[write_ptr] = address
        self._channel_unread[channel_idx] += 1
        self._meta_by_index[write_ptr] = dict(packet.meta)
        self._regs.write(_WRITE_PTR, write_ptr + 1)
        self._m_stored_packets.inc()
        self._m_stored_bytes.inc(len(frame))
        # If the local queue already drained below the low watermark the
        # dequeue trigger will never fire again — kick loading from here.
        self._maybe_start_loading(queue)

    # -- load path ------------------------------------------------------------------

    def _on_dequeue(self, port: int, packet: Packet, queue: PortQueue) -> None:
        flushed_ptr = packet.meta.get("pktbuf_write_ptr")
        if flushed_ptr is not None:
            # This entry's WRITE is on the wire; its READ may now be issued.
            self._flushed.add(flushed_ptr)
            if flushed_ptr == self._regs.read(_NEXT_LOAD_PTR):
                self._maybe_start_loading(
                    self.switch.port_queue(self.protected_port)
                )
            return
        if port != self.protected_port:
            return
        self._maybe_start_loading(queue)

    def start_draining(self) -> None:
        """Manually begin loading stored packets back (§5 microbenchmark)."""
        self._manual_drain_started = True
        self._maybe_start_loading(self.switch.port_queue(self.protected_port))

    def _maybe_start_loading(self, queue: PortQueue) -> None:
        if self._loading:
            return
        if self._degraded_channels:
            return  # load path stands down until the breaker re-closes
        if not self.is_buffering:
            return
        if self.config.manual_load and not self._manual_drain_started:
            return
        if queue.depth_bytes > self.config.low_watermark_bytes:
            return
        self._loading = True
        try:
            budget = self.config.max_outstanding_reads * max(
                1, len(self.alive_channels)
            )
            while (
                self._outstanding_reads < budget and self._unread_entries() > 0
            ):
                if not self._issue_read():
                    break  # next entry's WRITE hasn't left the switch yet
        finally:
            self._loading = False
        # Entries marked lost (failed channel) or kept across a recovery
        # may already be releasable without any wire round trip.
        self._drain_reorder()

    def _unread_entries(self) -> int:
        return self._regs.read(_WRITE_PTR) - self._regs.read(_NEXT_LOAD_PTR)

    def _issue_read(self) -> bool:
        """Issue (or resolve) the next READ in pointer order.

        Returns False when the load loop must stop because the entry's
        WRITE has not been transmitted yet; True otherwise (issued,
        already completed, or skipped as lost on a failed channel).
        """
        load_ptr = self._regs.read(_NEXT_LOAD_PTR)
        if load_ptr not in self._flushed:
            return False
        channel_idx = self._entry_channel[load_ptr]
        self._regs.write(_NEXT_LOAD_PTR, load_ptr + 1)
        if load_ptr in self._reorder:
            # Already completed before a go-back-N recovery; no wire work.
            return True
        if channel_idx in self._failed_channels:
            self._reorder[load_ptr] = None
            self._m_lost_to_failover.inc()
            return True
        # §4: "each load operation fetches a single entire entry regardless
        # of the original packet size".
        request = self.read_rocegens[channel_idx].read(
            self._entry_address[load_ptr], self.config.entry_bytes
        )
        psn = request.require(BthHeader).psn
        self._inflight[channel_idx].append((load_ptr, psn))
        self._outstanding_reads += 1
        self._arm_watchdog()
        return True

    # -- loss recovery (optional, §7 reliability extension) ----------------------

    def _arm_watchdog(self) -> None:
        if self.config.read_timeout_ns is None or self._watchdog_armed:
            return
        self._watchdog_armed = True
        self._watchdog_snapshot = self._regs.read(_READ_PTR)
        self.switch.sim.schedule(self.config.read_timeout_ns, self._watchdog)

    def _watchdog(self) -> None:
        self._watchdog_armed = False
        if self._degraded_channels:
            # The breaker already judged the channel; recovery restarts
            # the chain explicitly, so keep the watchdog out of it.
            return
        if self._outstanding_reads == 0:
            return
        if self._regs.read(_READ_PTR) != self._watchdog_snapshot:
            # Progress was made; keep watching.
            self._arm_watchdog()
            return
        # No READ completed for a full window: assume the chain is lost and
        # go back to the last committed read pointer.
        self._recover_reads()

    def _recover_reads(self) -> None:
        """Go-back-N: restart the read chain from the committed pointer.

        Completed entries already parked in the reorder stage are kept;
        only in-flight reads are abandoned.  Channels that were stalling
        accumulate a strike toward failover (§7 robustness).
        """
        self._m_read_recoveries.inc()
        self._outstanding_reads = 0
        for idx, inflight in enumerate(self._inflight):
            if inflight:
                self._strike_channel(idx)
            inflight.clear()
        self._regs.write(_NEXT_LOAD_PTR, self._regs.read(_READ_PTR))
        self._maybe_start_loading(self.switch.port_queue(self.protected_port))

    def _strike_channel(self, idx: int) -> None:
        if idx in self._failed_channels:
            return
        # Surface the stall as the uniform channel health signal whether
        # or not anything is watching (pool monitor, tests, dashboards).
        self.read_rocegens[idx].record_strike()
        if self.pool is not None:
            # Pool mode: the health monitor turns strikes into a member
            # down verdict and calls back into on_member_leave — the
            # private counter below would double-judge the same evidence.
            return
        if self.config.failover_strikes is None:
            return
        self._channel_strikes[idx] += 1
        if self._channel_strikes[idx] >= self.config.failover_strikes:
            self._fail_channel(idx)

    def _fail_channel(self, idx: int) -> None:
        """Declare channel *idx* dead: exclude it from striping; entries
        still waiting on it are abandoned as the reads reach them."""
        self._failed_channels.add(idx)
        self._draining_channels.discard(idx)
        self._inflight[idx].clear()
        self._m_channels_failed.inc()

    # -- degraded mode & recovery (DESIGN.md §11) --------------------------------

    def _channel_index(self, channel: Optional[RemoteMemoryChannel]) -> int:
        if channel is None:
            if len(self.channels) == 1:
                return 0
            raise ValueError("multiple channels; pass the affected one")
        for i, ch in enumerate(self.channels):
            if ch is channel:
                return i
        for i, ch in enumerate(self.read_channels):
            if ch is channel:
                return i
        raise ValueError(f"channel {channel.name!r} is not striped here")

    def degrade(self, channel: Optional[RemoteMemoryChannel] = None) -> None:
        """Enter degraded mode for *channel*: stop diverting, park the ring.

        Unlike failover, nothing is written off: the stranded entries stay
        accounted against their slots and :meth:`recover` drains them via
        RDMA READ once the breaker re-closes.  In-flight READs are
        abandoned without striking (the breaker already consumed that
        evidence).
        """
        idx = self._channel_index(channel)
        if idx in self._degraded_channels:
            return
        self._degraded_channels.add(idx)
        self._outstanding_reads = max(
            0, self._outstanding_reads - len(self._inflight[idx])
        )
        self._inflight[idx].clear()

    def probe(self, channel: Optional[RemoteMemoryChannel] = None) -> None:
        """Send one canary READ of the ring's first stamp word.

        Rides the channel's read QP so the response flows back through
        :meth:`try_handle`; with the in-flight queue empty the head-PSN
        match fails and :meth:`_complete_load` discards it as stale —
        after the generator reported it as progress to the breaker.
        """
        idx = self._channel_index(channel)
        self.read_rocegens[idx].read(
            self.channels[idx].base_address, ENTRY_SEQ_BYTES
        )

    def recover(self, channel: Optional[RemoteMemoryChannel] = None) -> None:
        """Leave degraded mode; drain stranded ring contents in order.

        Once the last degraded channel recovers, the read chain restarts
        from the committed read pointer — the same go-back-N restart the
        watchdog uses — so every entry stranded during the outage is
        fetched via RDMA READ and released through the reorder stage in
        ring-pointer order (zero dropped buffered packets, order
        preserved among themselves).
        """
        idx = self._channel_index(channel)
        self._degraded_channels.discard(idx)
        if self._degraded_channels:
            return
        if self.stored_entries > 0 or self._reorder:
            self._outstanding_reads = 0
            for inflight in self._inflight:
                inflight.clear()
            self._regs.write(_NEXT_LOAD_PTR, self._regs.read(_READ_PTR))
            self._maybe_start_loading(
                self.switch.port_queue(self.protected_port)
            )
            self._drain_reorder()
        elif self.is_buffering:
            self._regs.write(_BUFFERING, 0)

    # -- response handling -----------------------------------------------------------

    def try_handle(self, ctx: PipelineContext, packet: Packet) -> bool:
        """Consume RoCE responses belonging to this primitive's channels.

        The switch program calls this first in ``on_ingress``; returns True
        when the packet was a response this primitive handled.
        """
        owner = self._owning_channel(packet)
        if owner is None:
            return False
        channel_idx, is_read_qp = owner
        rocegen = (
            self.read_rocegens[channel_idx]
            if is_read_qp
            else self.rocegens[channel_idx]
        )
        opcode = rocegen.classify_response(packet)
        ctx.drop()  # the response itself never leaves the switch
        if rocegen.is_nak(packet):
            # A request was lost: resynchronize that QP's PSN stream.  The
            # read chain needs a go-back-N restart only when the loss hit
            # the read QP with reads in flight; lost WRITEs surface later
            # as stale entry stamps and must not thrash the load path.
            rocegen.maybe_resync(packet)
            if is_read_qp and self._inflight[channel_idx]:
                self._recover_reads()
            return True
        if opcode == Opcode.RDMA_READ_RESPONSE_ONLY:
            self._complete_load(channel_idx, packet)
        return True

    def _owning_channel(self, packet: Packet):
        """Return (channel index, rode-the-read-QP) for our responses."""
        bth = packet.find(BthHeader)
        if bth is None:
            return None
        for i, channel in enumerate(self.channels):
            if bth.dest_qp == channel.switch_qp.qpn:
                return i, False
        if self.read_channels is not self.channels:
            for i, channel in enumerate(self.read_channels):
                if bth.dest_qp == channel.switch_qp.qpn:
                    return i, True
        return None

    def _complete_load(self, channel_idx: int, response: Packet) -> None:
        psn = response.require(BthHeader).psn
        inflight = self._inflight[channel_idx]
        if not inflight or inflight[0][1] != psn:
            # Stale response from a chain that has since been recovered.
            return
        pointer, _ = inflight.popleft()
        self._outstanding_reads = max(0, self._outstanding_reads - 1)
        self._channel_strikes[channel_idx] = 0  # the channel is alive
        if pointer < self._regs.read(_READ_PTR):
            # A pre-recovery duplicate of an already-released entry.
            return
        entry = response.payload
        (stamp,) = struct.unpack("!Q", entry[:ENTRY_SEQ_BYTES])
        if stamp == pointer:
            original = Packet.parse(entry[ENTRY_SEQ_BYTES:])
            original.meta.update(self._meta_by_index.get(pointer, {}))
            self._reorder[pointer] = original
        else:
            # Stale stamp: the WRITE for this slot was lost on the wire, so
            # the original packet is gone (best-effort semantics, §7).
            self._reorder[pointer] = None
            self._m_lost_in_transit.inc()
        if len(self._reorder) > self._m_reorder_peak.value:
            self._m_reorder_peak.set(len(self._reorder))
        self._drain_reorder()
        if self.stored_entries > 0:
            # §4: the received READ response triggers the next READ.
            self._maybe_start_loading(
                self.switch.port_queue(self.protected_port)
            )

    def _drain_reorder(self) -> None:
        """Move consecutive completed entries into the egress queue.

        Pure release: never re-enters the load loop (callers decide
        whether to chain the next READ), so release and load cannot
        mutually recurse.
        """
        queue = self.switch.port_queue(self.protected_port)
        released = False
        while True:
            read_ptr = self._regs.read(_READ_PTR)
            if read_ptr not in self._reorder:
                break
            original = self._reorder.pop(read_ptr)
            self._meta_by_index.pop(read_ptr, None)
            self._flushed.discard(read_ptr)
            channel_idx = self._entry_channel.pop(read_ptr, None)
            self._entry_address.pop(read_ptr, None)
            if channel_idx is not None:
                # The ring slot is reusable once its entry is retired.
                self._channel_unread[channel_idx] -= 1
            self._regs.write(_READ_PTR, read_ptr + 1)
            if original is not None:
                self._m_loaded_packets.inc()
                self._m_loaded_bytes.inc(original.buffer_len)
                # Re-inject into the protected egress queue, bypassing the
                # hook so the loaded packet is not diverted again.
                queue.enqueue_direct(original)
                released = True
        if released:
            self.switch.port_interface(self.protected_port).kick()
        if self.stored_entries == 0 and not self._reorder:
            # Rings fully drained: leave buffering mode (order preserved).
            self._regs.write(_BUFFERING, 0)
