"""Data-plane RoCE request generation — the shared "primitive action" core.

On hardware this is the 1400 lines of P4 from §5: adding RoCE headers on
top of original or cloned packets, filling in QPN / rkey / addresses from
control-plane-installed registers, and parsing responses coming back from
the RNIC.  All three primitives (§4) are built on this class.

Observability: every generator claims a ``roce[<channel>]`` scope in the
simulation's :class:`~repro.obs.MetricRegistry` (request counts, wire
bytes, NAKs, strikes, timeouts) and — when the run enables wire tracing —
emits one :class:`~repro.obs.trace.TraceEvent` per request transmitted
and per response classified, stamped with the QP, the PSN and the sim
time.  The legacy :class:`RoceGenStats` dataclass survives as a snapshot
property over those metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..net.packet import Packet
from ..obs.trace import (
    KIND_ACK,
    KIND_ATOMIC,
    KIND_ATOMIC_ACK,
    KIND_FAULT,
    KIND_NAK,
    KIND_READ,
    KIND_READ_RESP,
    KIND_WRITE,
)
from ..rdma.constants import AethSyndrome, Opcode
from ..rdma.headers import AethHeader, AtomicAckEthHeader, BthHeader
from ..rdma.packets import (
    build_fetch_add_request,
    build_read_request,
    build_write_request,
    verify_icrc,
)
from ..switches.switch import ProgrammableSwitch
from .channel import RemoteMemoryChannel


#: Health events a channel's request generator can emit: "nak" on every
#: NAK response, "strike" when the owning primitive's recovery machinery
#: implicates the channel in a stall, "timeout" when a watchdog fires for
#: it, and "progress" on every non-NAK response.
HealthListener = Callable[["RoceRequestGenerator", str], None]

_RESPONSE_KINDS = {
    Opcode.ACKNOWLEDGE: KIND_ACK,
    Opcode.RDMA_READ_RESPONSE_ONLY: KIND_READ_RESP,
    Opcode.ATOMIC_ACKNOWLEDGE: KIND_ATOMIC_ACK,
}


@dataclass
class RoceGenStats:
    """Snapshot of one generator's ``roce[<channel>].*`` metrics."""

    writes_issued: int = 0
    reads_issued: int = 0
    fetch_adds_issued: int = 0
    responses_handled: int = 0
    naks_received: int = 0
    request_wire_bytes: int = 0
    response_wire_bytes: int = 0
    #: Stall events charged to this channel by its primitive's recovery
    #: machinery (go-back-N restarts with this channel's reads in flight,
    #: accepted loss-event resyncs, ...).
    strikes: int = 0
    #: Watchdog expiries charged to this channel (reliable-mode
    #: retransmission timers, read-chain watchdogs, ...).
    timeouts: int = 0
    #: Responses discarded because their computed ICRC did not match —
    #: corruption in flight, detected (see DESIGN.md §10).
    icrc_drops: int = 0


class RoceRequestGenerator:
    """Craft and transmit RoCE requests for one channel from the data plane."""

    def __init__(
        self, switch: ProgrammableSwitch, channel: RemoteMemoryChannel
    ) -> None:
        self.switch = switch
        self.channel = channel
        #: Optional subscriber to this channel's health events (the cluster
        #: health monitor plugs in here); every primitive reports the same
        #: signal vocabulary — nak / strike / timeout / progress.
        self.health_listener: Optional[HealthListener] = None
        obs = switch.sim.obs
        #: This generator's scope in the simulation's metric registry.
        self.metrics = obs.registry.unique_scope(f"roce[{channel.name}]")
        self._trace = obs.trace
        self._trace_node = f"switch:{switch.name}"
        self._m_writes = self.metrics.counter("writes_issued")
        self._m_reads = self.metrics.counter("reads_issued")
        self._m_fetch_adds = self.metrics.counter("fetch_adds_issued")
        self._m_responses = self.metrics.counter("responses_handled")
        self._m_naks = self.metrics.counter("naks_received")
        self._m_request_bytes = self.metrics.counter("request_wire_bytes")
        self._m_response_bytes = self.metrics.counter("response_wire_bytes")
        self._m_strikes = self.metrics.counter("strikes")
        self._m_timeouts = self.metrics.counter("timeouts")
        self._m_icrc_drops = self.metrics.counter("icrc_drops")

    @property
    def stats(self) -> RoceGenStats:
        """Legacy stats shim: a snapshot of this generator's metrics."""
        return RoceGenStats(
            writes_issued=self._m_writes.value,
            reads_issued=self._m_reads.value,
            fetch_adds_issued=self._m_fetch_adds.value,
            responses_handled=self._m_responses.value,
            naks_received=self._m_naks.value,
            request_wire_bytes=self._m_request_bytes.value,
            response_wire_bytes=self._m_response_bytes.value,
            strikes=self._m_strikes.value,
            timeouts=self._m_timeouts.value,
            icrc_drops=self._m_icrc_drops.value,
        )

    # -- health signal ------------------------------------------------------------

    def _emit_health(self, event: str) -> None:
        if self.health_listener is not None:
            self.health_listener(self, event)

    def record_strike(self) -> None:
        """The owning primitive implicated this channel in a stall."""
        self._m_strikes.inc()
        self._emit_health("strike")

    def record_timeout(self) -> None:
        """A watchdog expired waiting on this channel."""
        self._m_timeouts.inc()
        self._emit_health("timeout")

    def health_snapshot(self) -> dict:
        """Uniform per-channel health counters (what the monitor consumes)."""
        return {
            "requests": (
                self._m_writes.value
                + self._m_reads.value
                + self._m_fetch_adds.value
            ),
            "responses": self._m_responses.value,
            "naks": self._m_naks.value,
            "strikes": self._m_strikes.value,
            "timeouts": self._m_timeouts.value,
        }

    # -- request crafting ---------------------------------------------------------

    def write(
        self,
        remote_address: int,
        data: bytes,
        ack_request: bool = False,
        meta: Optional[dict] = None,
    ) -> Packet:
        """Issue an RDMA WRITE of *data*; returns the transmitted packet.

        ``meta`` entries are attached to the request *before* it is handed
        to the port (an idle port serializes synchronously, so tagging the
        returned packet afterwards is too late for transmit-time hooks).
        """
        self._check_range(remote_address, len(data))
        request = build_write_request(
            self.channel.switch_qp,
            remote_address,
            self.channel.rkey,
            data,
            ack_request=ack_request,
        )
        if meta:
            request.meta.update(meta)
        self._m_writes.inc()
        self._transmit(request, KIND_WRITE)
        return request

    def read(self, remote_address: int, length: int) -> Packet:
        """Issue an RDMA READ of *length* bytes; returns the packet."""
        self._check_range(remote_address, length)
        request = build_read_request(
            self.channel.switch_qp,
            remote_address,
            self.channel.rkey,
            length,
        )
        self._m_reads.inc()
        self._transmit(request, KIND_READ)
        return request

    def fetch_add(
        self, remote_address: int, value: int, psn: Optional[int] = None
    ) -> Packet:
        """Issue an atomic Fetch-and-Add of *value*; returns the packet.

        Pass an explicit *psn* to retransmit a lost request verbatim — the
        responder's atomic replay cache answers duplicates without
        re-applying them.
        """
        self._check_range(remote_address, 8)
        request = build_fetch_add_request(
            self.channel.switch_qp,
            remote_address,
            self.channel.rkey,
            value,
            psn=psn,
        )
        self._m_fetch_adds.inc()
        self._transmit(request, KIND_ATOMIC)
        return request

    def _check_range(self, remote_address: int, size: int) -> None:
        if (
            remote_address < self.channel.base_address
            or remote_address + size > self.channel.end_address
        ):
            raise ValueError(
                f"address range [{remote_address:#x}, "
                f"{remote_address + size:#x}) outside channel "
                f"{self.channel.name!r}"
            )

    def _transmit(self, request: Packet, kind: str) -> None:
        self._m_request_bytes.inc(request.wire_len)
        if self._trace is not None:
            self._trace.emit(
                self.switch.sim.now,
                self._trace_node,
                self.channel.switch_qp.qpn,
                kind,
                psn=request.require(BthHeader).psn,
                wire_bytes=request.wire_len,
                channel=self.channel.name,
            )
        self.switch.transmit(request, self.channel.server_port)

    # -- response handling ----------------------------------------------------------

    def owns_response(self, packet: Packet) -> bool:
        """Is *packet* a RoCE response addressed to this channel's QP?"""
        bth = packet.find(BthHeader)
        return bth is not None and bth.dest_qp == self.channel.switch_qp.qpn

    def classify_response(self, packet: Packet) -> Optional[Opcode]:
        """Account for a response and return its opcode; NAKs are counted.

        Responses carrying a computed ICRC are verified first: a
        mismatch means the packet was corrupted in flight, and the data
        plane must not act on anything inside it — it is dropped,
        counted under ``icrc_drops``, and ``None`` is returned (callers
        treat it as no response at all; the primitives' watchdogs
        recover, the same as for a lost packet).
        """
        bth = packet.require(BthHeader)
        if not verify_icrc(packet):
            self._m_icrc_drops.inc()
            if self._trace is not None:
                self._trace.emit(
                    self.switch.sim.now,
                    self._trace_node,
                    self.channel.switch_qp.qpn,
                    KIND_FAULT,
                    psn=bth.psn,
                    wire_bytes=packet.wire_len,
                    channel="icrc",
                )
            return None
        self._m_responses.inc()
        self._m_response_bytes.inc(packet.wire_len)
        aeth = packet.find(AethHeader)
        is_nak = aeth is not None and AethSyndrome.is_nak(aeth.syndrome)
        opcode = Opcode(bth.opcode)
        if is_nak:
            self._m_naks.inc()
            self._emit_health("nak")
        else:
            self._emit_health("progress")
        if self._trace is not None:
            self._trace.emit(
                self.switch.sim.now,
                self._trace_node,
                self.channel.switch_qp.qpn,
                KIND_NAK if is_nak else _RESPONSE_KINDS.get(opcode, opcode.name),
                psn=bth.psn,
                wire_bytes=packet.wire_len,
                channel=self.channel.name,
                syndrome=aeth.syndrome if is_nak else None,
            )
        return opcode

    @staticmethod
    def is_nak(packet: Packet) -> bool:
        aeth = packet.find(AethHeader)
        return aeth is not None and AethSyndrome.is_nak(aeth.syndrome)

    def maybe_resync(self, packet: Packet) -> bool:
        """Resynchronize the soft QP after a PSN-sequence-error NAK.

        Lost requests desynchronize the switch's next PSN from the RNIC's
        expected PSN, after which every request would be NAKed.  The NAK
        carries the expected PSN in its BTH; adopting it re-establishes the
        connection (the data-plane analogue of requester retransmission).
        Returns True when a resync happened.
        """
        aeth = packet.find(AethHeader)
        if aeth is None or aeth.syndrome != AethSyndrome.NAK_PSN_SEQUENCE_ERROR:
            return False
        self.channel.switch_qp.next_psn = packet.require(BthHeader).psn
        return True

    @staticmethod
    def atomic_result(packet: Packet) -> int:
        """Extract the pre-add value from an atomic acknowledgement."""
        return packet.require(AtomicAckEthHeader).original_data
