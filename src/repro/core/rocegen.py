"""Data-plane RoCE request generation — the shared "primitive action" core.

On hardware this is the 1400 lines of P4 from §5: adding RoCE headers on
top of original or cloned packets, filling in QPN / rkey / addresses from
control-plane-installed registers, and parsing responses coming back from
the RNIC.  All three primitives (§4) are built on this class.

The generator also keeps the per-channel statistics the evaluation needs
(request counts, request/response wire bytes), so experiments measure
overhead from actual packet sizes rather than assumed constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..net.packet import Packet
from ..rdma.constants import AethSyndrome, Opcode
from ..rdma.headers import AethHeader, AtomicAckEthHeader, BthHeader
from ..rdma.packets import (
    build_fetch_add_request,
    build_read_request,
    build_write_request,
)
from ..switches.switch import ProgrammableSwitch
from .channel import RemoteMemoryChannel


#: Health events a channel's request generator can emit: "nak" on every
#: NAK response, "strike" when the owning primitive's recovery machinery
#: implicates the channel in a stall, "timeout" when a watchdog fires for
#: it, and "progress" on every non-NAK response.
HealthListener = Callable[["RoceRequestGenerator", str], None]


@dataclass
class RoceGenStats:
    writes_issued: int = 0
    reads_issued: int = 0
    fetch_adds_issued: int = 0
    responses_handled: int = 0
    naks_received: int = 0
    request_wire_bytes: int = 0
    response_wire_bytes: int = 0
    #: Stall events charged to this channel by its primitive's recovery
    #: machinery (go-back-N restarts with this channel's reads in flight,
    #: accepted loss-event resyncs, ...).
    strikes: int = 0
    #: Watchdog expiries charged to this channel (reliable-mode
    #: retransmission timers, read-chain watchdogs, ...).
    timeouts: int = 0


class RoceRequestGenerator:
    """Craft and transmit RoCE requests for one channel from the data plane."""

    def __init__(
        self, switch: ProgrammableSwitch, channel: RemoteMemoryChannel
    ) -> None:
        self.switch = switch
        self.channel = channel
        self.stats = RoceGenStats()
        #: Optional subscriber to this channel's health events (the cluster
        #: health monitor plugs in here); every primitive reports the same
        #: signal vocabulary — nak / strike / timeout / progress.
        self.health_listener: Optional[HealthListener] = None

    # -- health signal ------------------------------------------------------------

    def _emit_health(self, event: str) -> None:
        if self.health_listener is not None:
            self.health_listener(self, event)

    def record_strike(self) -> None:
        """The owning primitive implicated this channel in a stall."""
        self.stats.strikes += 1
        self._emit_health("strike")

    def record_timeout(self) -> None:
        """A watchdog expired waiting on this channel."""
        self.stats.timeouts += 1
        self._emit_health("timeout")

    def health_snapshot(self) -> dict:
        """Uniform per-channel health counters (what the monitor consumes)."""
        return {
            "requests": (
                self.stats.writes_issued
                + self.stats.reads_issued
                + self.stats.fetch_adds_issued
            ),
            "responses": self.stats.responses_handled,
            "naks": self.stats.naks_received,
            "strikes": self.stats.strikes,
            "timeouts": self.stats.timeouts,
        }

    # -- request crafting ---------------------------------------------------------

    def write(
        self,
        remote_address: int,
        data: bytes,
        ack_request: bool = False,
        meta: Optional[dict] = None,
    ) -> Packet:
        """Issue an RDMA WRITE of *data*; returns the transmitted packet.

        ``meta`` entries are attached to the request *before* it is handed
        to the port (an idle port serializes synchronously, so tagging the
        returned packet afterwards is too late for transmit-time hooks).
        """
        self._check_range(remote_address, len(data))
        request = build_write_request(
            self.channel.switch_qp,
            remote_address,
            self.channel.rkey,
            data,
            ack_request=ack_request,
        )
        if meta:
            request.meta.update(meta)
        self.stats.writes_issued += 1
        self._transmit(request)
        return request

    def read(self, remote_address: int, length: int) -> Packet:
        """Issue an RDMA READ of *length* bytes; returns the packet."""
        self._check_range(remote_address, length)
        request = build_read_request(
            self.channel.switch_qp,
            remote_address,
            self.channel.rkey,
            length,
        )
        self.stats.reads_issued += 1
        self._transmit(request)
        return request

    def fetch_add(
        self, remote_address: int, value: int, psn: Optional[int] = None
    ) -> Packet:
        """Issue an atomic Fetch-and-Add of *value*; returns the packet.

        Pass an explicit *psn* to retransmit a lost request verbatim — the
        responder's atomic replay cache answers duplicates without
        re-applying them.
        """
        self._check_range(remote_address, 8)
        request = build_fetch_add_request(
            self.channel.switch_qp,
            remote_address,
            self.channel.rkey,
            value,
            psn=psn,
        )
        self.stats.fetch_adds_issued += 1
        self._transmit(request)
        return request

    def _check_range(self, remote_address: int, size: int) -> None:
        if (
            remote_address < self.channel.base_address
            or remote_address + size > self.channel.end_address
        ):
            raise ValueError(
                f"address range [{remote_address:#x}, "
                f"{remote_address + size:#x}) outside channel "
                f"{self.channel.name!r}"
            )

    def _transmit(self, request: Packet) -> None:
        self.stats.request_wire_bytes += request.wire_len
        self.switch.transmit(request, self.channel.server_port)

    # -- response handling ----------------------------------------------------------

    def owns_response(self, packet: Packet) -> bool:
        """Is *packet* a RoCE response addressed to this channel's QP?"""
        bth = packet.find(BthHeader)
        return bth is not None and bth.dest_qp == self.channel.switch_qp.qpn

    def classify_response(self, packet: Packet) -> Opcode:
        """Account for a response and return its opcode; NAKs are counted."""
        bth = packet.require(BthHeader)
        self.stats.responses_handled += 1
        self.stats.response_wire_bytes += packet.wire_len
        aeth = packet.find(AethHeader)
        if aeth is not None and AethSyndrome.is_nak(aeth.syndrome):
            self.stats.naks_received += 1
            self._emit_health("nak")
        else:
            self._emit_health("progress")
        return Opcode(bth.opcode)

    @staticmethod
    def is_nak(packet: Packet) -> bool:
        aeth = packet.find(AethHeader)
        return aeth is not None and AethSyndrome.is_nak(aeth.syndrome)

    def maybe_resync(self, packet: Packet) -> bool:
        """Resynchronize the soft QP after a PSN-sequence-error NAK.

        Lost requests desynchronize the switch's next PSN from the RNIC's
        expected PSN, after which every request would be NAKed.  The NAK
        carries the expected PSN in its BTH; adopting it re-establishes the
        connection (the data-plane analogue of requester retransmission).
        Returns True when a resync happened.
        """
        aeth = packet.find(AethHeader)
        if aeth is None or aeth.syndrome != AethSyndrome.NAK_PSN_SEQUENCE_ERROR:
            return False
        self.channel.switch_qp.next_psn = packet.require(BthHeader).psn
        return True

    @staticmethod
    def atomic_result(packet: Packet) -> int:
        """Extract the pre-add value from an atomic acknowledgement."""
        return packet.require(AtomicAckEthHeader).original_data
