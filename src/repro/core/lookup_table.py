"""The remote lookup table primitive (§4).

A remote exact-match table in server DRAM, indexed by a hash of the packet
5-tuple.  On a local SRAM-table miss the primitive *bounces* the packet:

1. compute ``index = hash(5-tuple) % entries`` and the entry's address,
2. RDMA WRITE the original packet into the entry's packet slot (so the
   switch holds no per-packet state while the lookup is in flight),
3. RDMA READ the whole entry — ``(action, packet)`` — back,
4. on the READ response, apply the action to the recovered packet, forward
   it, and optionally cache the entry in local SRAM so subsequent packets
   of the flow hit locally.

The §7 ablation mode ``recirculate`` instead parks the original packet in
the recirculation loop and READs only the action field, saving the WRITE's
bandwidth at the cost of pipeline passes.

Remote entry layout (``ACTION_BYTES`` = 16)::

    0      1          2        6             10      16
    +------+----------+--------+-------------+-------+----------------+
    |valid | action_id| param  | fingerprint | (pad) | packet slot ...|
    +------+----------+--------+-------------+-------+----------------+
     u8     u8          u32 BE   u32 BE        6 B     entry_slot_bytes

The 32-bit param is wide enough for an IPv4 address, so the bare-metal
virtual switch (§2.2) can store VIP→PIP translations directly.  The 32-bit
fingerprint (a second, independent hash of the 5-tuple) detects hash
collisions between flows sharing an index: a mismatched fingerprint falls
back to the default action instead of silently applying another flow's
action.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Deque, Dict, Optional, Tuple, Union

from ..cuckoo import CuckooConfig, CuckooDirectory
from ..net.addresses import Ipv4Address
from ..net.headers import Ipv4Header
from ..net.packet import Packet
from ..policies.cache import CachePolicy, make_cache_policy
from ..rdma.constants import Opcode, psn_distance
from ..rdma.headers import BthHeader
from ..rdma.memory import TIER_FAST
from .._deprecation import warn_once
from ..switches.hashing import FiveTuple, crc16
from ..switches.pipeline import PipelineContext
from ..switches.switch import ProgrammableSwitch
from .channel import RemoteMemoryChannel
from .rocegen import RoceRequestGenerator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (tiering uses core)
    from ..tiering.geometry import TieredRegionGeometry

ACTION_BYTES = 16
_ACTION_FORMAT = "!BBII6x"

#: Well-known remote actions.
ACTION_NOP = 0
ACTION_SET_DSCP = 1
ACTION_SET_EGRESS = 2
ACTION_DROP = 3
#: Rewrite the destination IP (VIP → PIP translation, §2.2); param is the
#: physical IPv4 address as a 32-bit integer.
ACTION_SET_DST_IP = 4


@dataclass(frozen=True)
class RemoteAction:
    """A decoded remote-table action."""

    action_id: int
    param: int

    def pack_with(self, fingerprint: int) -> bytes:
        return struct.pack(
            _ACTION_FORMAT, 1, self.action_id, self.param, fingerprint
        )

    @classmethod
    def unpack(cls, data: bytes) -> Tuple[bool, "RemoteAction", int]:
        """Returns (valid, action, fingerprint)."""
        valid, action_id, param, fingerprint = struct.unpack(
            _ACTION_FORMAT, data[:ACTION_BYTES]
        )
        return bool(valid), cls(action_id=action_id, param=param), fingerprint


@dataclass
class LookupTableConfig:
    """Geometry and behaviour of the remote lookup table."""

    #: Number of remote entries (the remote table is a fixed-size array).
    entries: int = 1 << 16
    #: Packet slot size within an entry (one full frame, like §4).
    packet_slot_bytes: int = 1600
    #: Local SRAM cache capacity in flows (0 disables caching).
    cache_entries: int = 1024
    #: Insert fetched entries into the local cache (§4's optional step).
    cache_fill: bool = True
    #: "bounce" (deposit packet remotely, §4) or "recirculate" (§7 option).
    mode: str = "bounce"
    #: "direct" — one hash, one entry per index (the original layout) —
    #: or "cuckoo" — EMOMA bucket pairs, every miss one READ, no
    #: bounce-retry on collision (repro.cuckoo).
    layout: str = "direct"
    #: Master seed for the cuckoo bucket hashes / choice filter / kick RNG.
    hash_seed: int = 0
    #: Cuckoo geometry (total slot capacity stays ``entries``).
    slots_per_bucket: int = 4
    max_kicks: int = 64
    max_relocations: int = 256
    #: SRAM cache eviction policy, under the unified policy convention
    #: (repro.policies): a name ("fifo", "lru", "lfu", "pin") or a
    #: ready-built :class:`~repro.policies.cache.CachePolicy` instance.
    policy: Union[str, CachePolicy, None] = None
    #: Seed for policy randomness (the pinning policy's threshold jitter).
    policy_seed: Optional[int] = None
    #: Deprecated spellings of ``policy`` / ``policy_seed`` (pre-unified
    #: API); still honoured, warn once, mirrored after normalization.
    cache_policy: Optional[str] = None
    cache_seed: Optional[int] = None
    #: Base promotion threshold for the "pin" policy.
    pin_threshold: int = 4

    def __post_init__(self) -> None:
        if self.cache_policy is not None:
            warn_once(
                "LookupTableConfig(cache_policy=...) is deprecated; "
                "use policy= (repro.policies naming convention)"
            )
            if self.policy is None:
                self.policy = self.cache_policy
        if self.cache_seed is not None:
            warn_once(
                "LookupTableConfig(cache_seed=...) is deprecated; "
                "use policy_seed="
            )
            if self.policy_seed is None:
                self.policy_seed = self.cache_seed
        if self.policy is None:
            self.policy = "fifo"
        if self.policy_seed is None:
            self.policy_seed = 0
        # Keep the legacy fields readable (old callers inspect them).
        if isinstance(self.policy, str):
            self.cache_policy = self.policy
        else:
            self.cache_policy = self.policy.policy_name
        self.cache_seed = self.policy_seed

    @property
    def entry_bytes(self) -> int:
        return ACTION_BYTES + self.packet_slot_bytes

    # -- cuckoo geometry -------------------------------------------------------

    @property
    def pairs(self) -> int:
        """Bucket pairs per subtable; slot capacity stays ``entries``."""
        return max(1, self.entries // (2 * self.slots_per_bucket))

    @property
    def bucket_pair_bytes(self) -> int:
        """Action slots of both buckets, before the shared packet slot."""
        return 2 * self.slots_per_bucket * ACTION_BYTES

    @property
    def pair_bytes(self) -> int:
        return self.bucket_pair_bytes + self.packet_slot_bytes

    @property
    def region_bytes(self) -> int:
        """Server memory the chosen layout needs."""
        if self.layout == "cuckoo":
            return self.pairs * self.pair_bytes
        return self.entries * self.entry_bytes


@dataclass
class LookupTableStats:
    local_hits: int = 0
    remote_lookups: int = 0
    remote_hits: int = 0
    remote_invalid: int = 0
    fingerprint_mismatches: int = 0
    cache_inserts: int = 0
    cache_evictions: int = 0
    recirculation_passes: int = 0
    #: Lookups (and, in bounce mode, their packets) lost to RDMA drops —
    #: §7: "an RDMA packet drop would lead to dropping the original packet".
    lookups_lost: int = 0

    @property
    def hit_rate(self) -> float:
        """SRAM cache hit rate: local hits over all resolved lookups.

        A property, not a field: :class:`ShardedLookupTable` sums the
        dataclass *fields* shard by shard, and a ratio must be recomputed
        from the summed counters, never added.
        """
        lookups = self.local_hits + self.remote_lookups
        return self.local_hits / lookups if lookups else 0.0


def fingerprint_of(flow: FiveTuple) -> int:
    """A 32-bit flow fingerprint independent of the index hash.

    CRC16 over the packed tuple and CRC16 over its reverse, concatenated —
    cheap enough for one pipeline stage, and independent enough from the
    CRC32 index hash that index collisions rarely share fingerprints.
    """
    packed = flow.pack()
    return (crc16(packed) << 16) | crc16(packed[::-1])


#: Program-supplied policy: (packet, action) -> egress port, or None to drop.
ResolveEgress = Callable[[Packet, RemoteAction], Optional[int]]


class RemoteLookupTable:
    """Data-plane component: remote match-action table with local cache."""

    def __init__(
        self,
        switch: ProgrammableSwitch,
        channel: Optional[RemoteMemoryChannel] = None,
        config: Optional[LookupTableConfig] = None,
        default_action: Optional[RemoteAction] = None,
        tiering: Optional["TieredRegionGeometry"] = None,
    ) -> None:
        self.switch = switch
        self._tiering = tiering
        if tiering is not None:
            if channel is None:
                channel = tiering.dram_channel
            elif channel is not tiering.dram_channel:
                raise ValueError(
                    "channel must be the tiering geometry's DRAM home "
                    "(or omitted)"
                )
        if channel is None:
            raise ValueError("pass a channel or a tiering= geometry")
        self.channel = channel
        self.config = config if config is not None else LookupTableConfig()
        if self.config.mode not in ("bounce", "recirculate"):
            raise ValueError(f"unknown mode: {self.config.mode!r}")
        if self.config.layout not in ("direct", "cuckoo"):
            raise ValueError(f"unknown layout: {self.config.layout!r}")
        needed = self.config.region_bytes
        if needed > channel.length:
            raise ValueError(
                f"layout {self.config.layout!r} needs {needed} B, exceeding "
                f"the channel's {channel.length} B"
            )
        if tiering is not None:
            unit = (
                self.config.pair_bytes
                if self.config.layout == "cuckoo"
                else self.config.entry_bytes
            )
            if tiering.unit_bytes != unit:
                raise ValueError(
                    f"tiering geometry unit_bytes={tiering.unit_bytes} does "
                    f"not match the layout's indexed unit ({unit} B)"
                )
        self.default_action = (
            default_action
            if default_action is not None
            else RemoteAction(ACTION_NOP, 0)
        )
        #: This table's scope in the simulation's metric registry
        #: ("lookup", "lookup#2", ... — one per table, never aliased).
        self.metrics = switch.sim.obs.registry.unique_scope("lookup")
        self._m_local_hits = self.metrics.counter("local_hits")
        self._m_remote_lookups = self.metrics.counter("remote_lookups")
        self._m_remote_hits = self.metrics.counter("remote_hits")
        self._m_remote_invalid = self.metrics.counter("remote_invalid")
        self._m_fp_mismatches = self.metrics.counter("fingerprint_mismatches")
        self._m_cache_inserts = self.metrics.counter("cache_inserts")
        self._m_cache_evictions = self.metrics.counter("cache_evictions")
        self._m_recirc_passes = self.metrics.counter("recirculation_passes")
        self._m_lookups_lost = self.metrics.counter("lookups_lost")
        self._m_degraded_hits = self.metrics.counter("degraded_hits")
        self._m_degraded_defaults = self.metrics.counter("degraded_defaults")
        self._m_latency = self.metrics.histogram("remote_latency_ns")
        self.rocegen = RoceRequestGenerator(switch, channel)
        # Tiered tables run one PSN stream per tier: fast-resident bucket
        # pairs ride the fast channel's generator.
        self._fastgen: Optional[RoceRequestGenerator] = None
        self._fast_degraded = False
        self._busy_blocks: Dict[int, int] = {}
        if tiering is not None:
            self._fastgen = RoceRequestGenerator(switch, tiering.fast_channel)
            tiering.busy_check = (
                lambda block: self._busy_blocks.get(block, 0) > 0
            )
        self.metrics.gauge(
            "pending", fn=lambda: len(self._pending) + len(self._pending_fast)
        )
        # Degraded mode (DESIGN.md §11): serve SRAM-cache hits and the
        # default action instead of bouncing packets into a dead channel.
        self._degraded = False
        self.metrics.gauge("degraded", fn=lambda: int(self._degraded))
        self.metrics.gauge("hit_rate", fn=self._cache_hit_rate)
        policy = self.config.policy
        self.cache: Optional[CachePolicy] = None
        if self.config.cache_entries > 0:
            if isinstance(policy, CachePolicy):
                self.cache = policy
            else:
                self.cache = make_cache_policy(
                    policy,
                    self.config.cache_entries,
                    metrics_scope=self.metrics.child("cache"),
                    seed=self.config.policy_seed,
                    pin_threshold=self.config.pin_threshold,
                )
        # Cuckoo layout (repro.cuckoo): the control-plane directory owns
        # placement; the data plane keeps only the two hash seeds and the
        # on-chip choice filter.  ``install_seeds`` / the controller's
        # ``install_hash_seeds`` can reseed while the table is empty.
        self.directory: Optional[CuckooDirectory] = None
        self.dataplane = None
        self._installed: Dict[FiveTuple, RemoteAction] = {}
        if self.config.layout == "cuckoo":
            self._build_directory(self.config.hash_seed)
            cuckoo_scope = self.metrics.child("cuckoo")
            cuckoo_scope.gauge("keys", fn=lambda: len(self.directory))
            cuckoo_scope.gauge("load", fn=lambda: self.directory.load)
            cuckoo_scope.gauge("kicks", fn=lambda: self.directory.kicks)
            cuckoo_scope.gauge(
                "relocations", fn=lambda: self.directory.relocations
            )
            cuckoo_scope.gauge(
                "failed_inserts", fn=lambda: self.directory.failed_inserts
            )
        # In-flight lookups, issue order, one FIFO per PSN stream.  Each
        # entry records its READ's PSN so responses are matched exactly
        # (a FIFO popleft would misalign after go-back-N losses discard a
        # window of lookups).  ``_pending`` is the DRAM/home stream — the
        # only one a non-tiered table has, which is why it keeps its
        # pre-tiering name (the sharded table drains it by that name).
        self._pending: Deque[dict] = deque()
        self._pending_fast: Deque[dict] = deque()
        # Guard against the NAK bursts one loss event produces: a resync
        # is acted on once per stream; echoes within the guard window are
        # ignored so they cannot kill lookups issued after the resync.
        self._last_resync: Dict[RoceRequestGenerator, tuple] = {}
        self._resync_guard_ns = 20_000.0
        #: Program-supplied forwarding policy applied after the action
        #: mutates the packet.  The default understands ACTION_SET_EGRESS
        #: and drops everything else.
        self.resolve_egress: ResolveEgress = self._default_resolve
        #: How packets map to table keys.  Defaults to the full 5-tuple;
        #: programs override it to key on a subset (e.g. the §2.2 virtual
        #: switch keys on the destination VIP alone).
        self.flow_of: Callable[[Packet], FiveTuple] = FiveTuple.of

    @property
    def stats(self) -> LookupTableStats:
        """Legacy stats shim: a snapshot of this table's metrics."""
        return LookupTableStats(
            local_hits=self._m_local_hits.value,
            remote_lookups=self._m_remote_lookups.value,
            remote_hits=self._m_remote_hits.value,
            remote_invalid=self._m_remote_invalid.value,
            fingerprint_mismatches=self._m_fp_mismatches.value,
            cache_inserts=self._m_cache_inserts.value,
            cache_evictions=self._m_cache_evictions.value,
            recirculation_passes=self._m_recirc_passes.value,
            lookups_lost=self._m_lookups_lost.value,
        )

    def _cache_hit_rate(self) -> float:
        lookups = self._m_local_hits.value + self._m_remote_lookups.value
        return self._m_local_hits.value / lookups if lookups else 0.0

    # -- control plane: populating the remote table ---------------------------------

    def key_of(self, packet: Packet) -> FiveTuple:
        """The table key for *packet* (``flow_of`` under the unified API)."""
        return self.flow_of(packet)

    def index_of(self, flow: FiveTuple) -> int:
        """The index the data plane READs for *flow*.

        Direct layout: ``hash % entries``.  Cuckoo layout: the pair the
        choice filter selects (``h1`` on positive, ``h0`` on negative) —
        always the pair actually holding the flow, by the invariant.
        """
        if isinstance(flow, Packet):
            warn_once(
                f"{type(self).__name__}.index_of(packet) is deprecated; "
                "use index_of(key_of(packet))"
            )
            flow = self.key_of(flow)
        if self.dataplane is not None:
            return self.dataplane.read_index(flow.pack())
        return flow.hash() % self.config.entries

    def entry_address(self, index: int) -> int:
        """DRAM-home address of indexed unit *index* (entry or bucket pair).

        Tiered tables resolve the *current* serving address per operation
        through :meth:`_locate`; the home address stays valid for probes.
        """
        if self.config.layout == "cuckoo":
            return self.channel.base_address + index * self.config.pair_bytes
        return self.channel.base_address + index * self.config.entry_bytes

    def _locate(
        self, index: int
    ) -> "Tuple[RoceRequestGenerator, int, Optional[int]]":
        """(generator, address, block) serving *index* right now."""
        if self._tiering is None:
            return self.rocegen, self.entry_address(index), None
        tier, address = self._tiering.resolve(index)
        self._tiering.record_access(index, tier)
        gen = self._fastgen if tier == TIER_FAST else self.rocegen
        return gen, address, self._tiering.block_of(index)

    def _entry_target(self, index: int) -> "Tuple[object, int]":
        """(region, address) the control plane must write for *index*.

        Installs always target the copy the data plane currently reads —
        writing the DRAM home of a fast-resident pair would leave the
        fast copy stale until its next demotion.
        """
        if self._tiering is None:
            return self.channel.region, self.entry_address(index)
        tier, address = self._tiering.resolve(index)
        return self._tiering.channel_for(tier).region, address

    def _pending_of(self, gen: RoceRequestGenerator) -> Deque[dict]:
        if self._fastgen is not None and gen is self._fastgen:
            return self._pending_fast
        return self._pending

    def _hold_block(self, block: Optional[int]) -> None:
        if block is not None:
            self._busy_blocks[block] = self._busy_blocks.get(block, 0) + 1

    def _release_pending(self, pending: dict) -> None:
        block = pending.get("block")
        if block is None:
            return
        count = self._busy_blocks.get(block, 0) - 1
        if count <= 0:
            self._busy_blocks.pop(block, None)
        else:
            self._busy_blocks[block] = count

    def _build_directory(self, seed: int) -> None:
        self.directory = CuckooDirectory(
            CuckooConfig(
                pairs=self.config.pairs,
                slots_per_bucket=self.config.slots_per_bucket,
                seed=seed,
                max_kicks=self.config.max_kicks,
                max_relocations=self.config.max_relocations,
            ),
            packer=lambda flow: flow.pack(),
        )
        self.dataplane = self.directory.dataplane

    def install_seeds(self, seed: int) -> Tuple[int, int]:
        """Reseed the cuckoo hashes; only legal while the table is empty.

        Returns the derived ``(seed0, seed1)`` pair the data plane now
        uses.  Called by the controller's ``install_hash_seeds`` — the
        §3-style control-plane hand-off of channel *and* hash state.
        """
        if self.directory is None:
            raise ValueError(
                "install_seeds requires layout='cuckoo' "
                f"(this table is {self.config.layout!r})"
            )
        if len(self.directory) > 0:
            raise ValueError(
                "cannot reseed a populated cuckoo table: "
                f"{len(self.directory)} flows already placed"
            )
        self._build_directory(seed)
        return self.dataplane.seed0, self.dataplane.seed1

    def install(self, flow: FiveTuple, action: RemoteAction) -> int:
        """Control-plane write of *action* for *flow* into the remote table.

        Returns the entry index (direct) or final pair index (cuckoo).
        (The controller writes through its own channel to the server;
        modelled as a direct region write.)  Cuckoo inserts may relocate
        other flows; every move is mirrored remotely — new slots written
        first, vacated slots zeroed after — and the whole batch lands
        between packets, so the data plane never observes a torn pair.
        Raises :class:`~repro.cuckoo.CuckooFullError` (with the
        directory rolled back) when placement is impossible.
        """
        if self.directory is not None:
            return self._install_cuckoo(flow, action)
        index = self.index_of(flow)
        data = action.pack_with(fingerprint_of(flow))
        region, address = self._entry_target(index)
        region.write(address, data)
        return index

    def _write_slot(self, ref, data: bytes) -> None:
        region, pair_base = self._entry_target(ref.index)
        offset = ref.table * self.config.slots_per_bucket + ref.slot
        region.write(pair_base + offset * ACTION_BYTES, data)

    def _install_cuckoo(self, flow: FiveTuple, action: RemoteAction) -> int:
        moves = self.directory.insert(flow)  # may raise CuckooFullError
        self._installed[flow] = action
        if not moves:  # re-install: rewrite the entry in place
            ref = self.directory.location[flow]
            self._write_slot(ref, action.pack_with(fingerprint_of(flow)))
            return ref.index
        written = set()
        for move in moves:
            moved_action = self._installed[move.key]
            self._write_slot(
                move.dst, moved_action.pack_with(fingerprint_of(move.key))
            )
            written.add(move.dst)
        for move in moves:
            src = move.src
            if (
                src is not None
                and src not in written
                and self.directory.slot_key(src) is None
            ):
                self._write_slot(src, b"\x00" * ACTION_BYTES)
        return self.directory.location[flow].index

    # -- data plane ---------------------------------------------------------------

    def lookup(self, ctx: PipelineContext, packet: Packet) -> bool:
        """Resolve and apply the action for *packet*.

        Returns True when the packet was handled locally (cache hit: the
        action has been applied synchronously) and False when a remote
        lookup is in flight (the packet was bounced or parked; the caller
        must not forward it).
        """
        flow = self.flow_of(packet)
        if self.cache is not None:
            action = self.cache.lookup(flow)
            if action is not None:
                self._m_local_hits.inc()
                if self._degraded:
                    self._m_degraded_hits.inc()
                self._apply(ctx, packet, action)
                return True
        if self._degraded:
            # Breaker open: the remote table is unreachable, so a cache
            # miss gets the default action instead of a bounce that would
            # strand the packet in a dead channel.
            self._m_degraded_defaults.inc()
            self._apply(ctx, packet, self.default_action)
            return True
        self._remote_lookup(ctx, packet, flow)
        return False

    def _apply(
        self, ctx: PipelineContext, packet: Packet, action: RemoteAction
    ) -> None:
        self._mutate(ctx, packet, action)
        port = self.resolve_egress(packet, action)
        if port is None or action.action_id == ACTION_DROP:
            ctx.drop()
        else:
            ctx.forward(port)

    def _remote_lookup(
        self, ctx: PipelineContext, packet: Packet, flow: FiveTuple
    ) -> None:
        self._m_remote_lookups.inc()
        index = self.index_of(flow)
        gen, address, block = self._locate(index)
        # Direct layout READs one action; cuckoo READs the whole bucket
        # pair (2 x slots_per_bucket actions) in the same single request —
        # the choice filter already picked the index, so there is never a
        # second READ, collision or not.
        action_bytes = (
            self.config.bucket_pair_bytes
            if self.config.layout == "cuckoo"
            else ACTION_BYTES
        )
        pending = {
            "flow": flow,
            "index": index,
            "block": block,
            "meta": dict(packet.meta),
            "issued_at": self.switch.sim.now,
        }
        if self.config.mode == "bounce":
            # (1) deposit the packet in the entry's slot, (2) read the
            # whole (actions, packet) entry back.
            frame = packet.pack()
            slot_space = self.config.packet_slot_bytes
            if len(frame) > slot_space:
                raise ValueError(
                    f"packet of {len(frame)} B exceeds the "
                    f"{slot_space} B packet slot"
                )
            gen.write(address + action_bytes, frame)
            request = gen.read(address, action_bytes + len(frame))
        else:
            # §7 alternative: keep the packet recirculating locally and
            # fetch only the action slots.
            pending["parked"] = packet
            request = gen.read(address, action_bytes)
        pending["read_psn"] = request.require(BthHeader).psn
        self._hold_block(block)
        self._pending_of(gen).append(pending)
        ctx.drop()  # the original packet no longer proceeds on this pass

    # -- response path ----------------------------------------------------------------

    def try_handle(self, ctx: PipelineContext, packet: Packet) -> bool:
        """Consume READ responses for this table; True when handled."""
        if self.rocegen.owns_response(packet):
            gen = self.rocegen
        elif self._fastgen is not None and self._fastgen.owns_response(packet):
            gen = self._fastgen
        else:
            return False
        ctx.drop()  # responses never leave the switch
        opcode = gen.classify_response(packet)
        if gen.is_nak(packet):
            self._handle_nak(gen, packet)
            return True
        if opcode != Opcode.RDMA_READ_RESPONSE_ONLY:
            return True
        # Match the response to its lookup by PSN; anything older in the
        # FIFO was lost to a drop window and never got a response.
        psn = packet.require(BthHeader).psn
        fifo = self._pending_of(gen)
        while fifo and fifo[0]["read_psn"] != psn:
            self._release_pending(fifo.popleft())
            self._m_lookups_lost.inc()
        if not fifo:
            return True  # stale response from before a resync
        pending = fifo.popleft()
        self._release_pending(pending)
        self._m_latency.observe(self.switch.sim.now - pending["issued_at"])
        entry = packet.payload
        flow: FiveTuple = pending["flow"]
        action, action_bytes = self._resolve_entry(entry, flow)
        if self.config.mode == "bounce":
            original = Packet.parse(entry[action_bytes:])
            original.meta.update(pending["meta"])
        else:
            original = pending["parked"]
            # Account the pipeline passes spent waiting in recirculation.
            waited = self.switch.sim.now - pending["issued_at"]
            passes = max(1, int(waited // self.switch.config.recirculation_latency_ns))
            self._m_recirc_passes.inc(passes)
        self._mutate(ctx, original, action)
        port = self.resolve_egress(original, action)
        if port is not None and action.action_id != ACTION_DROP:
            # The original packet resumes its journey out of the resolved
            # port; the response packet itself stays dropped.
            ctx.emit(original, port)
        return True

    def _resolve_entry(
        self, entry: bytes, flow: FiveTuple
    ) -> Tuple[RemoteAction, int]:
        """Decode the READ response into an action + header length.

        Direct layout: one action slot at offset 0.  Cuckoo layout: scan
        the ``2 x slots_per_bucket`` slots of the fetched bucket pair for
        the one whose fingerprint matches *flow* — the pipeline-stage
        analogue of a bucket compare, still within the same single READ.
        """
        expected_fp = fingerprint_of(flow)
        if self.config.layout == "cuckoo":
            action_bytes = self.config.bucket_pair_bytes
            any_valid = False
            for offset in range(0, action_bytes, ACTION_BYTES):
                valid, action, stored_fp = RemoteAction.unpack(
                    entry[offset:offset + ACTION_BYTES]
                )
                if not valid:
                    continue
                any_valid = True
                if stored_fp == expected_fp:
                    self._m_remote_hits.inc()
                    if self.cache is not None and self.config.cache_fill:
                        self._cache_fill(flow, action)
                    return action, action_bytes
            # Flow not present in its pair: occupied slots belong to
            # other flows (a mismatch), an empty pair is simply invalid.
            if any_valid:
                self._m_fp_mismatches.inc()
            else:
                self._m_remote_invalid.inc()
            return self.default_action, action_bytes
        valid, action, stored_fp = RemoteAction.unpack(entry)
        if not valid:
            self._m_remote_invalid.inc()
            action = self.default_action
        elif stored_fp != expected_fp:
            # Another flow owns this index — do not apply its action.
            self._m_fp_mismatches.inc()
            action = self.default_action
        else:
            self._m_remote_hits.inc()
            if self.cache is not None and self.config.cache_fill:
                self._cache_fill(flow, action)
        return action, ACTION_BYTES

    def _handle_nak(self, gen: RoceRequestGenerator, packet: Packet) -> None:
        """One loss event → one resync: discard the rejected lookup suffix.

        The NAK names the responder's expected PSN ``e``; every in-flight
        lookup whose READ carries ``psn >= e`` was rejected and (in bounce
        mode) its packet is gone.  Echo NAKs from the same event arrive
        for a while; the guard window keeps them from touching lookups
        issued after the resync (which legitimately reuse PSNs >= e).
        """
        expected = packet.require(BthHeader).psn
        now = self.switch.sim.now
        last = self._last_resync.get(gen)
        if (
            last is not None
            and last[0] == expected
            and now - last[1] < self._resync_guard_ns
        ):
            return  # echo of an already-handled loss event
        self._last_resync[gen] = (expected, now)
        gen.record_strike()  # one loss event = one strike
        gen.maybe_resync(packet)
        fifo = self._pending_of(gen)
        while fifo and psn_distance(
            expected, fifo[-1]["read_psn"]
        ) < (1 << 23):
            self._release_pending(fifo.pop())
            self._m_lookups_lost.inc()

    # -- degraded mode & recovery (DESIGN.md §11) --------------------------------

    def degrade(self, channel: Optional[RemoteMemoryChannel] = None) -> None:
        """Enter degraded mode: cache hits and default action only.

        In-flight bounced lookups are written off as lost — their packets
        are stranded in the remote entry slots of a dead channel, the
        same accounting §7 applies to RDMA drops.  (The packet *buffer*
        recovers stranded contents because it owns its ring exclusively;
        a lookup entry slot is overwritten by the next bounce, so replay
        after an outage could emit a stale packet.)
        """
        if self._degraded:
            return
        self._degraded = True
        for fifo in (self._pending, self._pending_fast):
            while fifo:
                self._release_pending(fifo.popleft())
                self._m_lookups_lost.inc()

    def degrade_fast(self) -> None:
        """Fast tier unhealthy: spill to DRAM and keep serving (§13).

        The demote-not-drop half of degraded mode for the lookup table:
        in-flight fast-tier lookups are written off (their bounced
        packets sit in an unreachable window — the same accounting §7
        applies to drops), the fast blocks are written back to their
        DRAM homes, and misses keep bouncing against DRAM.  Installed
        actions lose nothing: the write-back carries them home.
        """
        if self._tiering is None or self._fast_degraded:
            return
        self._fast_degraded = True
        while self._pending_fast:
            self._release_pending(self._pending_fast.popleft())
            self._m_lookups_lost.inc()
        self._tiering.fast_enabled = False
        self._tiering.demote_all(force=True)

    def recover_fast(self) -> None:
        """Re-enable the fast tier after its channel came back."""
        if self._tiering is None or not self._fast_degraded:
            return
        self._fast_degraded = False
        self._tiering.fast_enabled = True

    def probe(self, channel: Optional[RemoteMemoryChannel] = None) -> None:
        """Send one canary READ of entry 0 down the (possibly fresh) QP.

        Not registered in ``_pending``: the response's unknown PSN makes
        :meth:`try_handle` treat it as stale after reporting progress —
        exactly what the breaker needs.
        """
        self.rocegen.read(self.entry_address(0), ACTION_BYTES)

    def recover(self, channel: Optional[RemoteMemoryChannel] = None) -> None:
        """Leave degraded mode: misses bounce remotely again.

        No reconciliation is needed — the remote table is control-plane
        state that survived the outage untouched, and the cache stayed
        warm the whole time.
        """
        self._degraded = False

    def _cache_fill(self, flow: FiveTuple, action: RemoteAction) -> None:
        assert self.cache is not None
        inserted, evicted = self.cache.admit(flow, action)
        if evicted:
            self._m_cache_evictions.inc(evicted)
        if inserted:
            self._m_cache_inserts.inc()

    def _mutate(
        self, ctx: PipelineContext, packet: Packet, action: RemoteAction
    ) -> None:
        """Apply the packet-modifying part of the built-in actions."""
        if action.action_id == ACTION_SET_DSCP:
            ip = packet.find(Ipv4Header)
            if ip is not None:
                ip.dscp = action.param & 0x3F
        elif action.action_id == ACTION_SET_DST_IP:
            ip = packet.find(Ipv4Header)
            if ip is not None:
                ip.dst = Ipv4Address(action.param)

    @staticmethod
    def _default_resolve(packet: Packet, action: RemoteAction) -> Optional[int]:
        """Default forwarding policy when the program installs none."""
        if action.action_id == ACTION_SET_EGRESS:
            return action.param
        return None
