"""The RDMA channel controller (the paper's control-plane component, §3).

"An RDMA channel controller running on the switch control plane and a
server is responsible to allocate memory regions on the server, set up an
RDMA channel, and pass the channel information including a remote queue
pair number (QPN), a base address of the registered memory region, and a
remote access key (Rkey) for the region to the data plane via the switch
control plane APIs."

That is exactly what :class:`RdmaChannelController.open_channel` does.  The
returned :class:`RemoteMemoryChannel` is the information handed to the data
plane; primitives read only its scalar fields (QPN, rkey, base address,
port), never touching server objects — mirroring the hardware split where
the data plane knows numbers, not pointers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..hosts.server import MemoryServer
from ..obs.trace import KIND_RECONNECT
from ..rdma.memory import TIER_DRAM, TIERS, AccessFlags, MemoryRegion
from ..rdma.qp import QueuePair
from ..rdma.verbs import connect_qps
from ..switches.switch import ProgrammableSwitch


class ChannelError(RuntimeError):
    """Raised when a channel cannot be established."""


@dataclass
class RemoteMemoryChannel:
    """Everything the data plane needs to reach one remote memory region."""

    name: str
    #: Switch-side soft queue pair (PSN state lives in data-plane registers
    #: on real hardware; we reuse the QueuePair abstraction).
    switch_qp: QueuePair
    #: The server-side QP terminated by the RNIC.
    server_qp: QueuePair
    #: Switch egress port facing the memory server.
    server_port: int
    #: Remote access key of the registered region.
    rkey: int
    #: Base virtual address of the registered region.
    base_address: int
    #: Region length in bytes.
    length: int
    #: Control-plane handle to the region (tests and controller use only).
    region: MemoryRegion = field(repr=False, default=None)
    #: The memory server (control-plane handle, never used by primitives).
    server: MemoryServer = field(repr=False, default=None)
    #: Fired (then cleared) by ``close_channel`` so event listeners bound
    #: to this channel — HealthMonitor watches, breaker guards — detach on
    #: teardown instead of double-counting a later reopen.
    teardown_callbacks: List[Callable[[], None]] = field(
        default_factory=list, repr=False
    )
    #: Memory tier this channel's region models ("dram" or "fast").  The
    #: channel owns the authoritative tag: close→reopen and QP reconnect
    #: re-assert it on whatever region backs the channel, so the RNIC's
    #: per-tier service profile survives a fresh rkey (DESIGN.md §13).
    tier: str = TIER_DRAM

    @property
    def end_address(self) -> int:
        return self.base_address + self.length


class RdmaChannelController:
    """Control-plane agent establishing channels between a switch and servers.

    One controller per switch.  ``open_channel`` performs the whole §3
    initialization sequence: allocate + register server memory, create the
    server QP, create the switch-side soft QP, connect the pair, and
    return the channel descriptor for the data plane.
    """

    def __init__(self, switch: ProgrammableSwitch) -> None:
        self.switch = switch
        self.channels: list[RemoteMemoryChannel] = []
        # Per-controller so switch-QP numbering is deterministic per run;
        # responses dispatch on dest_qp, which only needs uniqueness
        # within this controller's switch.
        self._switch_qpn = itertools.count(0x100)
        obs = switch.sim.obs
        self.metrics = obs.registry.unique_scope(
            f"resilience.controller[{switch.name}]"
        )
        self._m_reconnects = self.metrics.counter("reconnects")
        self._trace = obs.trace

    def open_channel(
        self,
        server: MemoryServer,
        server_port: int,
        size_bytes: int = 0,
        name: Optional[str] = None,
        access: AccessFlags = AccessFlags.ALL_REMOTE,
        share_region_with: Optional[RemoteMemoryChannel] = None,
        tier: Optional[str] = None,
    ) -> RemoteMemoryChannel:
        """Establish an RDMA channel to *size_bytes* of *server*'s DRAM.

        ``server_port`` is the switch port the memory server is attached
        to.  Raises :class:`ChannelError` when the port does not face that
        server or the port lacks the IP identity RoCE packets need.

        ``share_region_with`` opens a *second queue pair* onto an existing
        channel's memory region instead of registering new memory.  RC
        delivers strictly in PSN order per QP, so two traffic classes that
        the switch may reorder (e.g. prioritized READs overtaking bulk
        WRITEs) must ride separate QPs — sharing a QP would NAK-storm.
        """
        if not 0 <= server_port < self.switch.port_count:
            raise ChannelError(
                f"switch {self.switch.name} has no port {server_port}"
            )
        port_iface = self.switch.port_interface(server_port)
        if port_iface.ip is None:
            raise ChannelError(
                f"port {server_port} needs an IP address to source RoCE "
                "packets; pass ip= to add_port()"
            )
        peer = port_iface.peer
        if peer is None or peer.node is not server:
            raise ChannelError(
                f"port {server_port} is not connected to server {server.name}"
            )

        # 1. Allocate and register the memory region on the server (or
        #    adopt the shared one).  ``tier`` defaults to the shared
        #    channel's tier, else DRAM.
        if share_region_with is not None:
            if share_region_with.server is not server:
                raise ChannelError(
                    "cannot share a region across different servers"
                )
            if tier is not None and tier != share_region_with.tier:
                raise ChannelError(
                    f"cannot open a {tier!r} channel onto a "
                    f"{share_region_with.tier!r} region"
                )
            tier = share_region_with.tier
            region = share_region_with.region
        else:
            tier = TIER_DRAM if tier is None else tier
            if tier not in TIERS:
                raise ChannelError(
                    f"unknown memory tier {tier!r}; expected one of {TIERS}"
                )
            region = server.lend_memory(size_bytes, access=access, tier=tier)
        # 2. Create the server-side queue pair on its RNIC.
        server_qp = server.rnic.create_qp()
        # 3. Create the switch-side soft queue pair, sourced from the port.
        switch_qp = QueuePair(
            next(self._switch_qpn), port_iface.ip, port_iface.mac
        )
        # 4. Exchange connection state (the blue dashed line in Fig. 2).
        connect_qps(switch_qp, server_qp)

        channel = RemoteMemoryChannel(
            name=name or f"{self.switch.name}->{server.name}",
            switch_qp=switch_qp,
            server_qp=server_qp,
            server_port=server_port,
            rkey=region.rkey,
            base_address=region.base_address,
            length=region.length,
            region=region,
            server=server,
            tier=tier,
        )
        self.channels.append(channel)
        return channel

    def close_channel(self, channel: RemoteMemoryChannel) -> None:
        """Tear the channel down so the same server/port can be reused.

        The full §3 sequence in reverse: both QPs go to ERROR, the
        server-side QP is destroyed on its RNIC (fresh responder state on
        reopen — ePSN, atomic replay cache), and the memory region is
        deregistered and returned to the DRAM budget unless another open
        channel still shares it.  A subsequent ``open_channel`` on the
        same server/port gets a fresh QPN and rkey with no stale
        switch-side or server-side state — the property live shard
        migration depends on.
        """
        if channel not in self.channels:
            raise ChannelError(f"channel {channel.name!r} is not open")
        self.channels.remove(channel)
        callbacks, channel.teardown_callbacks = channel.teardown_callbacks, []
        for callback in callbacks:
            callback()
        channel.switch_qp.to_error()
        channel.server.rnic.destroy_qp(channel.server_qp)
        if not any(ch.region is channel.region for ch in self.channels):
            channel.server.dram.release(channel.region)
            if channel.region in channel.server.lent_regions:
                channel.server.lent_regions.remove(channel.region)

    def install_hash_seeds(self, table, seed: int) -> "list[tuple[int, int]]":
        """Install the cuckoo bucket-hash seeds into *table*'s data plane.

        The §3 hand-off extended to the cuckoo layout: besides the
        channel tuple (QPN, rkey, base address), the data plane needs
        the two bucket-hash seeds ``(seed0, seed1)`` before it can
        compute pair indices.  The controller derives both from *seed*
        and pushes them through the same control-plane API the channel
        information rides — only legal while the table holds no flows.

        Accepts a :class:`~repro.core.lookup_table.RemoteLookupTable`
        with ``layout="cuckoo"`` or a sharded table (every shard is
        reseeded identically).  Returns the installed ``(seed0, seed1)``
        per (shard) table.
        """
        shards = getattr(table, "shards", None)
        targets = list(shards.values()) if shards is not None else [table]
        if not targets:
            raise ChannelError("no shards to install hash seeds into")
        installed = []
        for target in targets:
            install = getattr(target, "install_seeds", None)
            if install is None:
                raise ChannelError(
                    f"{type(target).__name__} has no cuckoo data plane to "
                    "seed (need layout='cuckoo')"
                )
            try:
                installed.append(install(seed))
            except ValueError as exc:
                raise ChannelError(str(exc)) from exc
        return installed

    def reconnect_channel(self, channel: RemoteMemoryChannel) -> None:
        """Tear down and re-open the channel's QP pair on the same region.

        The recovery half of §3: after retry exhaustion the old QPs are
        unusable (stale PSN state, a responder that may be mid-outage),
        but the registered memory — counters, buffered packets — must
        survive.  Both QPs go to ERROR, the server-side QP is destroyed
        (if its RNIC still knows it; a rebooted RNIC already forgot), and
        a fresh pair is created and connected with new QPN/PSN state.

        The channel descriptor is mutated **in place**: primitives hold
        the :class:`RemoteMemoryChannel` object itself, so the fresh
        ``(QPN, rkey, base)`` tuple is visible to the data plane the
        moment this returns — the simulator analogue of the control
        plane re-installing the channel registers.  Unacknowledged WRs
        on the old QP are never silently replayed: requesters observe
        them as error completions / timeouts and reconcile explicitly
        (DESIGN.md §11).  Teardown callbacks do NOT fire — listeners stay
        attached because it is still the same logical channel.
        """
        if channel not in self.channels:
            raise ChannelError(f"channel {channel.name!r} is not open")
        port_iface = self.switch.port_interface(channel.server_port)
        channel.switch_qp.to_error()
        old_server_qp = channel.server_qp
        rnic = channel.server.rnic
        if rnic.qps.get(old_server_qp.qpn) is old_server_qp:
            rnic.destroy_qp(old_server_qp)
        server_qp = rnic.create_qp()
        switch_qp = QueuePair(
            next(self._switch_qpn), port_iface.ip, port_iface.mac
        )
        connect_qps(switch_qp, server_qp)
        channel.switch_qp = switch_qp
        channel.server_qp = server_qp
        # Re-assert the channel's tier on its region.  The region survives
        # the reconnect, but recovery paths that re-registered it (e.g. a
        # pool reopening the channel after a member bounce) used to come
        # back tier-less — silently downgrading a fast region to DRAM
        # service until the next full reopen.  The channel's tag is
        # authoritative; restamp unconditionally.
        channel.region.tier = channel.tier
        self._m_reconnects.inc()
        if self._trace is not None:
            self._trace.emit(
                self.switch.sim.now,
                f"controller:{self.switch.name}",
                switch_qp.qpn,
                KIND_RECONNECT,
                psn=switch_qp.qpn,
                channel=channel.name,
            )
