"""The RDMA channel controller (the paper's control-plane component, §3).

"An RDMA channel controller running on the switch control plane and a
server is responsible to allocate memory regions on the server, set up an
RDMA channel, and pass the channel information including a remote queue
pair number (QPN), a base address of the registered memory region, and a
remote access key (Rkey) for the region to the data plane via the switch
control plane APIs."

That is exactly what :class:`RdmaChannelController.open_channel` does.  The
returned :class:`RemoteMemoryChannel` is the information handed to the data
plane; primitives read only its scalar fields (QPN, rkey, base address,
port), never touching server objects — mirroring the hardware split where
the data plane knows numbers, not pointers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..hosts.server import MemoryServer
from ..rdma.memory import AccessFlags, MemoryRegion
from ..rdma.qp import QueuePair
from ..rdma.verbs import connect_qps
from ..switches.switch import ProgrammableSwitch


class ChannelError(RuntimeError):
    """Raised when a channel cannot be established."""


@dataclass
class RemoteMemoryChannel:
    """Everything the data plane needs to reach one remote memory region."""

    name: str
    #: Switch-side soft queue pair (PSN state lives in data-plane registers
    #: on real hardware; we reuse the QueuePair abstraction).
    switch_qp: QueuePair
    #: The server-side QP terminated by the RNIC.
    server_qp: QueuePair
    #: Switch egress port facing the memory server.
    server_port: int
    #: Remote access key of the registered region.
    rkey: int
    #: Base virtual address of the registered region.
    base_address: int
    #: Region length in bytes.
    length: int
    #: Control-plane handle to the region (tests and controller use only).
    region: MemoryRegion = field(repr=False, default=None)
    #: The memory server (control-plane handle, never used by primitives).
    server: MemoryServer = field(repr=False, default=None)

    @property
    def end_address(self) -> int:
        return self.base_address + self.length


class RdmaChannelController:
    """Control-plane agent establishing channels between a switch and servers.

    One controller per switch.  ``open_channel`` performs the whole §3
    initialization sequence: allocate + register server memory, create the
    server QP, create the switch-side soft QP, connect the pair, and
    return the channel descriptor for the data plane.
    """

    def __init__(self, switch: ProgrammableSwitch) -> None:
        self.switch = switch
        self.channels: list[RemoteMemoryChannel] = []
        # Per-controller so switch-QP numbering is deterministic per run;
        # responses dispatch on dest_qp, which only needs uniqueness
        # within this controller's switch.
        self._switch_qpn = itertools.count(0x100)

    def open_channel(
        self,
        server: MemoryServer,
        server_port: int,
        size_bytes: int = 0,
        name: Optional[str] = None,
        access: AccessFlags = AccessFlags.ALL_REMOTE,
        share_region_with: Optional[RemoteMemoryChannel] = None,
    ) -> RemoteMemoryChannel:
        """Establish an RDMA channel to *size_bytes* of *server*'s DRAM.

        ``server_port`` is the switch port the memory server is attached
        to.  Raises :class:`ChannelError` when the port does not face that
        server or the port lacks the IP identity RoCE packets need.

        ``share_region_with`` opens a *second queue pair* onto an existing
        channel's memory region instead of registering new memory.  RC
        delivers strictly in PSN order per QP, so two traffic classes that
        the switch may reorder (e.g. prioritized READs overtaking bulk
        WRITEs) must ride separate QPs — sharing a QP would NAK-storm.
        """
        if not 0 <= server_port < self.switch.port_count:
            raise ChannelError(
                f"switch {self.switch.name} has no port {server_port}"
            )
        port_iface = self.switch.port_interface(server_port)
        if port_iface.ip is None:
            raise ChannelError(
                f"port {server_port} needs an IP address to source RoCE "
                "packets; pass ip= to add_port()"
            )
        peer = port_iface.peer
        if peer is None or peer.node is not server:
            raise ChannelError(
                f"port {server_port} is not connected to server {server.name}"
            )

        # 1. Allocate and register the memory region on the server (or
        #    adopt the shared one).
        if share_region_with is not None:
            if share_region_with.server is not server:
                raise ChannelError(
                    "cannot share a region across different servers"
                )
            region = share_region_with.region
        else:
            region = server.lend_memory(size_bytes, access=access)
        # 2. Create the server-side queue pair on its RNIC.
        server_qp = server.rnic.create_qp()
        # 3. Create the switch-side soft queue pair, sourced from the port.
        switch_qp = QueuePair(
            next(self._switch_qpn), port_iface.ip, port_iface.mac
        )
        # 4. Exchange connection state (the blue dashed line in Fig. 2).
        connect_qps(switch_qp, server_qp)

        channel = RemoteMemoryChannel(
            name=name or f"{self.switch.name}->{server.name}",
            switch_qp=switch_qp,
            server_qp=server_qp,
            server_port=server_port,
            rkey=region.rkey,
            base_address=region.base_address,
            length=region.length,
            region=region,
            server=server,
        )
        self.channels.append(channel)
        return channel

    def close_channel(self, channel: RemoteMemoryChannel) -> None:
        """Tear the channel down so the same server/port can be reused.

        The full §3 sequence in reverse: both QPs go to ERROR, the
        server-side QP is destroyed on its RNIC (fresh responder state on
        reopen — ePSN, atomic replay cache), and the memory region is
        deregistered and returned to the DRAM budget unless another open
        channel still shares it.  A subsequent ``open_channel`` on the
        same server/port gets a fresh QPN and rkey with no stale
        switch-side or server-side state — the property live shard
        migration depends on.
        """
        if channel not in self.channels:
            raise ChannelError(f"channel {channel.name!r} is not open")
        self.channels.remove(channel)
        channel.switch_qp.to_error()
        channel.server.rnic.destroy_qp(channel.server_qp)
        if not any(ch.region is channel.region for ch in self.channels):
            channel.server.dram.release(channel.region)
            if channel.region in channel.server.lent_regions:
                channel.server.lent_regions.remove(channel.region)
