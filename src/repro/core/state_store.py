"""The state-store primitive (§4).

Maintains large arrays of stateful objects — here per-flow packet (or
byte) counters — in remote DRAM via RDMA atomic Fetch-and-Add.

The critical hardware constraint (§4): "Since there is a maximum limit of
outstanding RDMA atomic requests that an RNIC can handle, we design this
primitive to maintain the number of outstanding requests and issue a
Fetch-and-Add request only if there is a room to issue more requests.
Otherwise, it accumulates the counter value and uses the accumulated value
when it can issue a new operation."

The outstanding-request count lives in a data-plane register; the
accumulators are a register-array keyed by counter index.  Batch combining
of k updates per operation (§7's bandwidth-reduction extension) is a
config knob exercised by the ablation benchmarks.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from .._deprecation import warn_once
from ..net.packet import Packet
from ..rdma.constants import ATOMIC_OPERAND_BYTES, Opcode, psn_distance
from ..rdma.headers import BthHeader
from ..switches.hashing import FiveTuple
from ..switches.pipeline import PipelineContext
from ..switches.registers import RegisterArray
from ..switches.switch import ProgrammableSwitch
from .channel import RemoteMemoryChannel
from .rocegen import RoceRequestGenerator

#: Register index of the outstanding-operation count.
_OUTSTANDING = 0


@dataclass
class StateStoreConfig:
    """Geometry and pacing of the remote state store."""

    #: Number of 8-byte counters in the remote region.
    counters: int = 1 << 20
    #: Cap on in-flight Fetch-and-Adds; must not exceed what the RNIC's
    #: atomic engine absorbs (RnicConfig.max_outstanding_atomics).
    max_outstanding: int = 16
    #: Combine at least this many updates per operation (§7 extension;
    #: 1 = issue per packet when there is room).
    batch_size: int = 1
    #: Sampling predicate; None counts every packet.
    sample: Optional[Callable[[Packet], bool]] = None
    #: Value added per packet: "packets" or "bytes".
    count_mode: str = "packets"
    #: §7 reliability extension: track ACK/NAK per operation and
    #: retransmit lost requests with their original PSN.  Exactly-once
    #: semantics come from the RNIC's atomic replay cache: a duplicate
    #: Fetch-and-Add (ours after a lost *response*) is answered from the
    #: cache instead of being applied twice.
    reliable: bool = False
    #: Retransmission check period in reliable mode.
    retry_timeout_ns: float = 100_000.0


@dataclass
class StateStoreStats:
    sampled_packets: int = 0
    operations_issued: int = 0
    updates_combined: int = 0
    acks_received: int = 0
    naks_received: int = 0
    #: Sum of values carried by issued operations (for accuracy checks).
    value_issued: int = 0
    #: Reliable mode: same-PSN retransmissions after a timeout.
    retransmissions: int = 0
    #: Reliable mode: operations re-queued after a NAK said they were
    #: rejected by the responder.
    requeued_after_nak: int = 0


class RemoteStateStore:
    """Data-plane component: remote per-flow counters via Fetch-and-Add."""

    def __init__(
        self,
        switch: ProgrammableSwitch,
        channel: RemoteMemoryChannel,
        config: Optional[StateStoreConfig] = None,
    ) -> None:
        self.switch = switch
        self.channel = channel
        self.config = config if config is not None else StateStoreConfig()
        if self.config.count_mode not in ("packets", "bytes"):
            raise ValueError(f"unknown count mode: {self.config.count_mode!r}")
        if self.config.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.config.max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1")
        needed = self.config.counters * ATOMIC_OPERAND_BYTES
        if needed > channel.length:
            raise ValueError(
                f"{self.config.counters} counters need {needed} B, channel "
                f"has {channel.length} B"
            )
        #: This store's scope in the simulation's metric registry
        #: ("statestore", "statestore#2", ...).
        self.metrics = switch.sim.obs.registry.unique_scope("statestore")
        self._m_sampled = self.metrics.counter("sampled_packets")
        self._m_ops = self.metrics.counter("operations_issued")
        self._m_combined = self.metrics.counter("updates_combined")
        self._m_acks = self.metrics.counter("acks_received")
        self._m_naks = self.metrics.counter("naks_received")
        self._m_value = self.metrics.counter("value_issued")
        self._m_retx = self.metrics.counter("retransmissions")
        self._m_requeued = self.metrics.counter("requeued_after_nak")
        self._m_degraded_updates = self.metrics.counter("degraded_updates")
        self._m_reconcile_reads = self.metrics.counter("reconcile_reads")
        self._m_reconciled_applied = self.metrics.counter("reconciled_applied")
        self._m_reconciled_reissued = self.metrics.counter("reconciled_reissued")
        self.rocegen = RoceRequestGenerator(switch, channel)
        self._regs = RegisterArray("statestore", 1, width_bits=16)
        self.metrics.gauge("outstanding", fn=lambda: self._regs.read(_OUTSTANDING))
        self.metrics.gauge("pending_value", fn=lambda: sum(self._accumulators.values()))
        self.metrics.gauge("degraded", fn=lambda: int(self._degraded))
        # Pending (not yet issued) accumulated values by counter index.
        # On hardware this is a register array indexed by counter index;
        # FIFO order keeps flushing fair.
        self._accumulators: "OrderedDict[int, int]" = OrderedDict()
        # Reliable mode: in-flight operations (psn, index, value), oldest
        # first, plus the retransmission watchdog state.
        self._inflight_ops: "OrderedDict[int, tuple]" = OrderedDict()
        self._retry_armed = False
        self._retry_snapshot: Optional[int] = None
        self._closed = False
        # Degraded mode (DESIGN.md §11): while the channel's breaker is
        # open the store accumulates locally and never drives the wire.
        self._degraded = False
        # Ops that were in flight when the channel degraded: their fate is
        # unknown (executed with a lost ACK, or never delivered) until the
        # post-recovery reconcile reads the remote counters.
        self._suspended_ops: "OrderedDict[int, tuple]" = OrderedDict()
        # Reliable mode: per-index value definitely applied remotely (every
        # acked op adds here) — the reference point the reconcile compares
        # remote counter values against for exactly-once recovery.
        self._committed: Dict[int, int] = {}
        # Outstanding reconcile READs: psn -> counter index.
        self._reconcile_reads: Dict[int, int] = {}
        # Suspended value per index awaiting its reconcile READ.
        self._reconcile_value: Dict[int, int] = {}

    @property
    def stats(self) -> StateStoreStats:
        """Legacy stats shim: a snapshot of this store's metrics."""
        return StateStoreStats(
            sampled_packets=self._m_sampled.value,
            operations_issued=self._m_ops.value,
            updates_combined=self._m_combined.value,
            acks_received=self._m_acks.value,
            naks_received=self._m_naks.value,
            value_issued=self._m_value.value,
            retransmissions=self._m_retx.value,
            requeued_after_nak=self._m_requeued.value,
        )

    # -- addressing ----------------------------------------------------------------

    def key_of(self, packet: Packet) -> FiveTuple:
        """The counter key for *packet* (its 5-tuple)."""
        return FiveTuple.of(packet)

    def index_of(self, flow: FiveTuple) -> int:
        """Counter index for *flow*.

        Historically took a :class:`Packet` (``index_of(packet)``); that
        form still works but is deprecated — use
        ``index_of(key_of(packet))``, the same shape as
        :meth:`RemoteLookupTable.index_of`.
        """
        if isinstance(flow, Packet):
            warn_once(
                f"{type(self).__name__}.index_of(packet) is deprecated; "
                "use index_of(key_of(packet))"
            )
            flow = self.key_of(flow)
        return flow.hash() % self.config.counters

    def counter_address(self, index: int) -> int:
        return self.channel.base_address + index * ATOMIC_OPERAND_BYTES

    # -- data plane -----------------------------------------------------------------

    def on_packet(self, ctx: PipelineContext, packet: Packet) -> None:
        """Count *packet* (called from the program's ingress/egress).

        On hardware this clones the packet, truncates it, and rewrites the
        clone into a Fetch-and-Add request (§4); the original proceeds
        through the pipeline untouched, which is why this method never
        alters ``ctx``.
        """
        if self.config.sample is not None and not self.config.sample(packet):
            return
        self._m_sampled.inc()
        value = 1 if self.config.count_mode == "packets" else packet.buffer_len
        self.update(self.key_of(packet).hash() % self.config.counters, value)

    def update(self, index: int, value: int) -> None:
        """Add *value* to counter *index*, respecting the outstanding cap.

        Public so that richer telemetry structures (e.g. the remote
        sketches in :mod:`repro.apps.sketch`) can drive arbitrary counter
        indices through the same pacing and accumulation machinery.
        """
        if self._closed:
            raise RuntimeError("state store is closed")
        if not 0 <= index < self.config.counters:
            raise IndexError(f"counter index {index} out of range")
        pending = self._accumulators.get(index, 0) + value
        if self._degraded:
            # Breaker open: the channel is dead, so every update
            # accumulates locally; recovery flushes the backlog.
            self._accumulators[index] = pending
            self._m_degraded_updates.inc()
            if pending > value:
                self._m_combined.inc()
            return
        # Batch readiness uses the magnitude so negative (Count Sketch)
        # deltas flush too; a zero net change needs no operation at all.
        if (
            self.outstanding < self.config.max_outstanding
            and abs(pending) >= self.config.batch_size
        ):
            self._accumulators.pop(index, None)
            self._issue(index, pending)
        else:
            # No room (or batch not full): accumulate locally, flush later.
            self._accumulators[index] = pending
            if pending > value:
                self._m_combined.inc()

    def _issue(self, index: int, value: int) -> None:
        # Negative deltas (Count Sketch's ±1 updates) ride as two's
        # complement: Fetch-and-Add is modulo 2^64 on both ends.
        request = self.rocegen.fetch_add(
            self.counter_address(index), value % (1 << 64)
        )
        if self.config.reliable:
            psn = request.require(BthHeader).psn
            self._inflight_ops[psn] = (index, value)
            self._arm_retry()
        self._regs.add(_OUTSTANDING, 1)
        self._m_ops.inc()
        self._m_value.inc(value)

    # -- response path ---------------------------------------------------------------

    def try_handle(self, ctx: PipelineContext, packet: Packet) -> bool:
        """Consume atomic acknowledgements; True when handled."""
        if not self.rocegen.owns_response(packet):
            return False
        ctx.drop()
        opcode = self.rocegen.classify_response(packet)
        if opcode == Opcode.RDMA_READ_RESPONSE_ONLY:
            # Reconcile READ after a recovery (or a breaker probe, whose
            # PSN matches nothing and is ignored here — classify_response
            # already reported it as progress).
            self._complete_reconcile(packet)
            return True
        if opcode not in (Opcode.ATOMIC_ACKNOWLEDGE, Opcode.ACKNOWLEDGE):
            return True
        if self.rocegen.is_nak(packet):
            self._m_naks.inc()
            if self.config.reliable:
                # Go-back-N: retransmit rejected operations with their
                # original PSNs (never resync backwards — reusing a PSN for
                # a *different* operation would let the replay cache
                # swallow it).
                self._handle_nak_reliable(packet)
            else:
                # Best-effort: the operation's value is lost; resync the
                # PSN stream so later operations are not rejected too.
                self.rocegen.maybe_resync(packet)
        elif self.config.reliable:
            self._m_acks.inc()
            self._ack_through(packet.require(BthHeader).psn)
        else:
            self._m_acks.inc()
        if not self.config.reliable:
            self._regs.write(
                _OUTSTANDING, max(0, self._regs.read(_OUTSTANDING) - 1)
            )
        self._flush()
        return True

    # -- reliable-mode machinery (§7 extension) ---------------------------------

    def _ack_through(self, psn: int) -> None:
        """Retire every in-flight op at or before *psn* (RC is in order)."""
        retired = [
            p
            for p in self._inflight_ops
            if psn_distance(p, psn) < (1 << 23)
        ]
        for p in retired:
            index, value = self._inflight_ops.pop(p)
            self._committed[index] = self._committed.get(index, 0) + value
        self._regs.write(_OUTSTANDING, len(self._inflight_ops))

    def _handle_nak_reliable(self, packet: Packet) -> None:
        """A NAK names the first rejected PSN: ops before it executed, ops
        from it on never did — retransmit them verbatim, in PSN order.

        Retransmission keeps each operation bound to its original PSN, so
        a stale NAK (several queue up during one loss event) only causes
        harmless duplicate retransmissions that the responder's replay
        cache absorbs.
        """
        expected = packet.require(BthHeader).psn
        for p in list(self._inflight_ops):
            if psn_distance(expected, p) >= (1 << 23):
                # p < expected: already executed; its response may have
                # been lost, but the count is safely applied.
                index, value = self._inflight_ops.pop(p)
                self._committed[index] = self._committed.get(index, 0) + value
        for p, (index, value) in self._inflight_ops.items():
            self.rocegen.fetch_add(
                self.counter_address(index), value % (1 << 64), psn=p
            )
            self._m_requeued.inc()
        self._regs.write(_OUTSTANDING, len(self._inflight_ops))

    def _arm_retry(self) -> None:
        if self._retry_armed or self._closed or self._degraded:
            return
        self._retry_armed = True
        self._retry_snapshot = next(iter(self._inflight_ops), None)
        self.switch.sim.schedule(self.config.retry_timeout_ns, self._retry_check)

    def _retry_check(self) -> None:
        self._retry_armed = False
        if self._degraded or not self._inflight_ops:
            return
        head = next(iter(self._inflight_ops))
        if head != self._retry_snapshot:
            self._arm_retry()
            return
        # The oldest operation saw no progress for a full window: its
        # request or response was lost.  Retransmit verbatim (same PSN);
        # the RNIC's replay cache makes this idempotent.
        self.rocegen.record_timeout()
        if self._closed or head not in self._inflight_ops:
            # The timeout report tripped the health monitor, which closed
            # this store reentrantly — nothing left to retransmit.
            return
        index, value = self._inflight_ops[head]
        self.rocegen.fetch_add(
            self.counter_address(index), value % (1 << 64), psn=head
        )
        self._m_retx.inc()
        self._arm_retry()

    def _flush(self) -> None:
        """Issue accumulated updates while the outstanding window has room.

        Only full batches flush automatically; a partial batch stays local
        (§7's "at the cost of some delay in updates").  Operators drain
        leftovers with :meth:`flush_all`.
        """
        if self._degraded:
            return
        while self._regs.read(_OUTSTANDING) < self.config.max_outstanding:
            ready = next(
                (
                    index
                    for index, value in self._accumulators.items()
                    if abs(value) >= self.config.batch_size
                ),
                None,
            )
            if ready is None:
                return
            self._issue(ready, self._accumulators.pop(ready))

    def flush_all(self) -> None:
        """Force-issue every accumulated update (ignores batch_size).

        Values beyond the outstanding window stay pending and drain as
        acknowledgements return; call again (or keep the sim running) to
        complete the drain.  A no-op while degraded: the backlog flushes
        on :meth:`recover` instead.
        """
        if self._degraded:
            return
        while (
            self._accumulators
            and self._regs.read(_OUTSTANDING) < self.config.max_outstanding
        ):
            index, value = self._accumulators.popitem(last=False)
            self._issue(index, value)

    # -- degraded mode & recovery (DESIGN.md §11) --------------------------------

    def degrade(self, channel: Optional[RemoteMemoryChannel] = None) -> None:
        """Enter degraded mode: accumulate locally, stop driving the wire.

        Called by the channel's breaker guard when it opens.  In-flight
        operations are *suspended*, not abandoned: whether each executed
        (ACK lost in the outage) or never arrived is unknowable until
        :meth:`recover` reads the remote counters back.  The watchdog
        stands down — retransmitting into a dead channel only burns the
        health budget the breaker already spent.
        """
        if self._degraded:
            return
        self._degraded = True
        self._suspended_ops.update(self._inflight_ops)
        self._inflight_ops.clear()
        self._regs.write(_OUTSTANDING, 0)

    def probe(self, channel: Optional[RemoteMemoryChannel] = None) -> None:
        """Send one canary READ down the (possibly fresh) QP.

        Rides this store's own request generator, so the response returns
        through :meth:`try_handle` and reaches the breaker as progress.
        The READ is deliberately not registered anywhere: an unknown-PSN
        response is ignored by the reconcile path.
        """
        self.rocegen.read(self.counter_address(0), ATOMIC_OPERAND_BYTES)

    def recover(self, channel: Optional[RemoteMemoryChannel] = None) -> None:
        """Leave degraded mode and flush the backlog with zero lost updates.

        Reliable mode first *reconciles* every suspended operation: one
        RDMA READ per touched counter compares the remote value against
        the committed total, deciding exactly how much of the suspended
        value already landed (the QP reconnect discarded the old replay
        cache, so blind re-issue could double-apply).  The backlog —
        degraded-mode accumulators plus whatever the reconcile found
        missing — then drains through the normal Fetch-and-Add window.
        """
        if not self._degraded:
            return
        self._degraded = False
        if self.config.reliable and self._suspended_ops:
            self._start_reconcile()
        else:
            self._suspended_ops.clear()
            self.flush_all()

    def _start_reconcile(self) -> None:
        suspended: Dict[int, int] = {}
        for index, value in self._suspended_ops.values():
            suspended[index] = suspended.get(index, 0) + value
        self._suspended_ops.clear()
        for index in suspended:
            self._reconcile_value[index] = (
                self._reconcile_value.get(index, 0) + suspended[index]
            )
            request = self.rocegen.read(
                self.counter_address(index), ATOMIC_OPERAND_BYTES
            )
            self._reconcile_reads[request.require(BthHeader).psn] = index
            self._m_reconcile_reads.inc()

    def _complete_reconcile(self, packet: Packet) -> None:
        psn = packet.require(BthHeader).psn
        index = self._reconcile_reads.pop(psn, None)
        if index is None:
            return  # breaker probe or stale READ — nothing to reconcile
        remote = int.from_bytes(packet.payload[:ATOMIC_OPERAND_BYTES], "big")
        committed = self._committed.get(index, 0)
        suspended = self._reconcile_value.pop(index, 0)
        # remote = committed + (whatever fraction of the suspended value
        # executed before the outage).  The clamp keeps a concurrent
        # writer or wrap-around from ever reissuing more than we
        # suspended or crediting more than we observed.
        applied = max(0, min(remote - committed, suspended))
        self._committed[index] = committed + applied
        self._m_reconciled_applied.inc(applied)
        missing = suspended - applied
        if missing:
            self._m_reconciled_reissued.inc(missing)
            self._accumulators[index] = (
                self._accumulators.get(index, 0) + missing
            )
        if not self._reconcile_reads:
            self.flush_all()

    def close(self) -> None:
        """Stop driving the channel (its member failed or left the pool).

        Abandons in-flight operations and local accumulators so the
        reliable-mode watchdog stops retransmitting into a dead channel;
        replication (the cluster layer) is what keeps the data safe.
        """
        self._closed = True
        self._inflight_ops.clear()
        self._accumulators.clear()
        self._suspended_ops.clear()
        self._reconcile_reads.clear()
        self._reconcile_value.clear()
        self._regs.write(_OUTSTANDING, 0)

    # -- introspection ------------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        return self._regs.read(_OUTSTANDING)

    @property
    def pending_value(self) -> int:
        """Locally accumulated value not yet issued."""
        return sum(self._accumulators.values())

    def read_counter_via_control_plane(self, index: int) -> int:
        """Operator-side counter read (estimation algorithms run here, §4)."""
        raw = self.channel.region.read(
            self.counter_address(index), ATOMIC_OPERAND_BYTES
        )
        return int.from_bytes(raw, "big")
