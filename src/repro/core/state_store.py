"""The state-store primitive (§4).

Maintains large arrays of stateful objects — here per-flow packet (or
byte) counters — in remote DRAM via RDMA atomic Fetch-and-Add.

The critical hardware constraint (§4): "Since there is a maximum limit of
outstanding RDMA atomic requests that an RNIC can handle, we design this
primitive to maintain the number of outstanding requests and issue a
Fetch-and-Add request only if there is a room to issue more requests.
Otherwise, it accumulates the counter value and uses the accumulated value
when it can issue a new operation."

The outstanding-request count lives in a data-plane register; the
accumulators are a register-array keyed by counter index.  Batch combining
of k updates per operation (§7's bandwidth-reduction extension) is a
config knob exercised by the ablation benchmarks.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from .._deprecation import warn_once
from ..net.packet import Packet
from ..rdma.constants import ATOMIC_OPERAND_BYTES, Opcode, psn_distance
from ..rdma.headers import BthHeader
from ..rdma.memory import TIER_FAST
from ..switches.hashing import FiveTuple
from ..switches.pipeline import PipelineContext
from ..switches.registers import RegisterArray
from ..switches.switch import ProgrammableSwitch
from .channel import RemoteMemoryChannel
from .rocegen import RoceRequestGenerator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (tiering uses core)
    from ..tiering.geometry import TieredRegionGeometry

#: Register index of the outstanding-operation count.
_OUTSTANDING = 0


@dataclass
class StateStoreConfig:
    """Geometry and pacing of the remote state store."""

    #: Number of 8-byte counters in the remote region.
    counters: int = 1 << 20
    #: Cap on in-flight Fetch-and-Adds; must not exceed what the RNIC's
    #: atomic engine absorbs (RnicConfig.max_outstanding_atomics).
    max_outstanding: int = 16
    #: Combine at least this many updates per operation (§7 extension;
    #: 1 = issue per packet when there is room).
    batch_size: int = 1
    #: Sampling predicate; None counts every packet.
    sample: Optional[Callable[[Packet], bool]] = None
    #: Value added per packet: "packets" or "bytes".
    count_mode: str = "packets"
    #: §7 reliability extension: track ACK/NAK per operation and
    #: retransmit lost requests with their original PSN.  Exactly-once
    #: semantics come from the RNIC's atomic replay cache: a duplicate
    #: Fetch-and-Add (ours after a lost *response*) is answered from the
    #: cache instead of being applied twice.
    reliable: bool = False
    #: Retransmission check period in reliable mode.
    retry_timeout_ns: float = 100_000.0


@dataclass
class StateStoreStats:
    sampled_packets: int = 0
    operations_issued: int = 0
    updates_combined: int = 0
    acks_received: int = 0
    naks_received: int = 0
    #: Sum of values carried by issued operations (for accuracy checks).
    value_issued: int = 0
    #: Reliable mode: same-PSN retransmissions after a timeout.
    retransmissions: int = 0
    #: Reliable mode: operations re-queued after a NAK said they were
    #: rejected by the responder.
    requeued_after_nak: int = 0


class RemoteStateStore:
    """Data-plane component: remote per-flow counters via Fetch-and-Add."""

    def __init__(
        self,
        switch: ProgrammableSwitch,
        channel: Optional[RemoteMemoryChannel] = None,
        config: Optional[StateStoreConfig] = None,
        tiering: Optional["TieredRegionGeometry"] = None,
    ) -> None:
        self.switch = switch
        self._tiering = tiering
        if tiering is not None:
            if channel is None:
                channel = tiering.dram_channel
            elif channel is not tiering.dram_channel:
                raise ValueError(
                    "channel must be the tiering geometry's DRAM home "
                    "(or omitted)"
                )
            if tiering.unit_bytes != ATOMIC_OPERAND_BYTES:
                raise ValueError(
                    f"tiered counters need unit_bytes="
                    f"{ATOMIC_OPERAND_BYTES}, geometry has "
                    f"{tiering.unit_bytes}"
                )
        if channel is None:
            raise ValueError("pass a channel or a tiering= geometry")
        self.channel = channel
        self.config = config if config is not None else StateStoreConfig()
        if tiering is not None and self.config.counters > tiering.units:
            raise ValueError(
                f"{self.config.counters} counters exceed the tiering "
                f"geometry's {tiering.units} units"
            )
        if self.config.count_mode not in ("packets", "bytes"):
            raise ValueError(f"unknown count mode: {self.config.count_mode!r}")
        if self.config.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.config.max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1")
        needed = self.config.counters * ATOMIC_OPERAND_BYTES
        if needed > channel.length:
            raise ValueError(
                f"{self.config.counters} counters need {needed} B, channel "
                f"has {channel.length} B"
            )
        #: This store's scope in the simulation's metric registry
        #: ("statestore", "statestore#2", ...).
        self.metrics = switch.sim.obs.registry.unique_scope("statestore")
        self._m_sampled = self.metrics.counter("sampled_packets")
        self._m_ops = self.metrics.counter("operations_issued")
        self._m_combined = self.metrics.counter("updates_combined")
        self._m_acks = self.metrics.counter("acks_received")
        self._m_naks = self.metrics.counter("naks_received")
        self._m_value = self.metrics.counter("value_issued")
        self._m_retx = self.metrics.counter("retransmissions")
        self._m_requeued = self.metrics.counter("requeued_after_nak")
        self._m_degraded_updates = self.metrics.counter("degraded_updates")
        self._m_reconcile_reads = self.metrics.counter("reconcile_reads")
        self._m_reconciled_applied = self.metrics.counter("reconciled_applied")
        self._m_reconciled_reissued = self.metrics.counter("reconciled_reissued")
        self._h_op_latency = self.metrics.histogram("op_latency_ns")
        self.rocegen = RoceRequestGenerator(switch, channel)
        # Tiered stores run one PSN stream per tier: a second generator
        # drives the fast window, and all reliable-mode tracking is keyed
        # by generator because PSN spaces are per-QP.
        self._fastgen: Optional[RoceRequestGenerator] = None
        if tiering is not None:
            self._fastgen = RoceRequestGenerator(switch, tiering.fast_channel)
            tiering.busy_check = self._block_busy
        self._gens: List[RoceRequestGenerator] = [self.rocegen]
        if self._fastgen is not None:
            self._gens.append(self._fastgen)
        self._regs = RegisterArray("statestore", 1, width_bits=16)
        self.metrics.gauge("outstanding", fn=lambda: self._regs.read(_OUTSTANDING))
        self.metrics.gauge("pending_value", fn=lambda: sum(self._accumulators.values()))
        self.metrics.gauge("degraded", fn=lambda: int(self._degraded))
        # Pending (not yet issued) accumulated values by counter index.
        # On hardware this is a register array indexed by counter index;
        # FIFO order keeps flushing fair.
        self._accumulators: "OrderedDict[int, int]" = OrderedDict()
        # Reliable mode: per-generator in-flight operations
        # psn -> (index, value, address), oldest first, plus the
        # retransmission watchdog state.  The address is recorded at issue
        # time so retransmissions replay the *original* target even if the
        # block moved tiers since (it cannot — busy blocks refuse to move —
        # but the invariant is cheap to keep by construction).
        self._inflight: Dict[
            RoceRequestGenerator, "OrderedDict[int, tuple]"
        ] = {gen: OrderedDict() for gen in self._gens}
        self._retry_armed = False
        self._retry_snapshot: Dict[
            RoceRequestGenerator, Optional[int]
        ] = {}
        # psn -> (block, t_issue_ns) per generator: feeds the busy-block
        # refcounts (a block with operations on the wire must not change
        # tier) and the op_latency_ns histogram.  Local bookkeeping only —
        # it never touches the wire, in either reliability mode.
        self._op_meta: Dict[
            RoceRequestGenerator, "OrderedDict[int, tuple]"
        ] = {gen: OrderedDict() for gen in self._gens}
        self._busy_blocks: Dict[int, int] = {}
        self._closed = False
        # Degraded mode (DESIGN.md §11): while the channel's breaker is
        # open the store accumulates locally and never drives the wire.
        self._degraded = False
        # Fast-tier partial degrade (DESIGN.md §13): the fast window is
        # out of service but the store keeps running against DRAM.
        self._fast_degraded = False
        # Ops that were in flight when the channel degraded: their fate is
        # unknown (executed with a lost ACK, or never delivered) until the
        # post-recovery reconcile reads the remote counters.
        self._suspended_ops: List[Tuple[int, int]] = []
        # Reliable mode: per-index value definitely applied remotely (every
        # acked op adds here) — the reference point the reconcile compares
        # remote counter values against for exactly-once recovery.
        self._committed: Dict[int, int] = {}
        # Outstanding reconcile READs: (generator, psn) -> counter index.
        self._reconcile_reads: Dict[tuple, int] = {}
        # Suspended value per index awaiting its reconcile READ.
        self._reconcile_value: Dict[int, int] = {}

    @property
    def stats(self) -> StateStoreStats:
        """Legacy stats shim: a snapshot of this store's metrics."""
        return StateStoreStats(
            sampled_packets=self._m_sampled.value,
            operations_issued=self._m_ops.value,
            updates_combined=self._m_combined.value,
            acks_received=self._m_acks.value,
            naks_received=self._m_naks.value,
            value_issued=self._m_value.value,
            retransmissions=self._m_retx.value,
            requeued_after_nak=self._m_requeued.value,
        )

    # -- addressing ----------------------------------------------------------------

    def key_of(self, packet: Packet) -> FiveTuple:
        """The counter key for *packet* (its 5-tuple)."""
        return FiveTuple.of(packet)

    def index_of(self, flow: FiveTuple) -> int:
        """Counter index for *flow*.

        Historically took a :class:`Packet` (``index_of(packet)``); that
        form still works but is deprecated — use
        ``index_of(key_of(packet))``, the same shape as
        :meth:`RemoteLookupTable.index_of`.
        """
        if isinstance(flow, Packet):
            warn_once(
                f"{type(self).__name__}.index_of(packet) is deprecated; "
                "use index_of(key_of(packet))"
            )
            flow = self.key_of(flow)
        return flow.hash() % self.config.counters

    def counter_address(self, index: int) -> int:
        """The counter's DRAM-home address (tier-agnostic).

        Tiered stores resolve the *current* serving address per operation
        through :meth:`_locate`; the DRAM home stays valid for probes and
        anything that only needs a reachable address on the home channel.
        """
        return self.channel.base_address + index * ATOMIC_OPERAND_BYTES

    def _locate(
        self, index: int, record: bool = True
    ) -> "Tuple[RoceRequestGenerator, int, Optional[int]]":
        """(generator, address, block) serving *index* right now.

        The tier resolution is the only thing tiering changes on the hot
        path: a fast-resident block rides the fast channel's generator
        (and therefore the RNIC's fast-tier service profile), everything
        else the DRAM home.  ``record`` feeds the access into the
        geometry's per-block counters — the signal placement policies
        promote on.
        """
        if self._tiering is None:
            return self.rocegen, self.counter_address(index), None
        tier, address = self._tiering.resolve(index)
        if record:
            self._tiering.record_access(index, tier)
        gen = self._fastgen if tier == TIER_FAST else self.rocegen
        return gen, address, self._tiering.block_of(index)

    # -- data plane -----------------------------------------------------------------

    def on_packet(self, ctx: PipelineContext, packet: Packet) -> None:
        """Count *packet* (called from the program's ingress/egress).

        On hardware this clones the packet, truncates it, and rewrites the
        clone into a Fetch-and-Add request (§4); the original proceeds
        through the pipeline untouched, which is why this method never
        alters ``ctx``.
        """
        if self.config.sample is not None and not self.config.sample(packet):
            return
        self._m_sampled.inc()
        value = 1 if self.config.count_mode == "packets" else packet.buffer_len
        self.update(self.key_of(packet).hash() % self.config.counters, value)

    def update(self, index: int, value: int) -> None:
        """Add *value* to counter *index*, respecting the outstanding cap.

        Public so that richer telemetry structures (e.g. the remote
        sketches in :mod:`repro.apps.sketch`) can drive arbitrary counter
        indices through the same pacing and accumulation machinery.
        """
        if self._closed:
            raise RuntimeError("state store is closed")
        if not 0 <= index < self.config.counters:
            raise IndexError(f"counter index {index} out of range")
        pending = self._accumulators.get(index, 0) + value
        if self._degraded:
            # Breaker open: the channel is dead, so every update
            # accumulates locally; recovery flushes the backlog.
            self._accumulators[index] = pending
            self._m_degraded_updates.inc()
            if pending > value:
                self._m_combined.inc()
            return
        # Batch readiness uses the magnitude so negative (Count Sketch)
        # deltas flush too; a zero net change needs no operation at all.
        if (
            self.outstanding < self.config.max_outstanding
            and abs(pending) >= self.config.batch_size
        ):
            self._accumulators.pop(index, None)
            self._issue(index, pending)
        else:
            # No room (or batch not full): accumulate locally, flush later.
            self._accumulators[index] = pending
            if pending > value:
                self._m_combined.inc()

    def _issue(self, index: int, value: int) -> None:
        # Negative deltas (Count Sketch's ±1 updates) ride as two's
        # complement: Fetch-and-Add is modulo 2^64 on both ends.
        gen, address, block = self._locate(index)
        request = gen.fetch_add(address, value % (1 << 64))
        psn = request.require(BthHeader).psn
        self._op_meta[gen][psn] = (block, self.switch.sim.now)
        if block is not None:
            self._busy_blocks[block] = self._busy_blocks.get(block, 0) + 1
        if self.config.reliable:
            self._inflight[gen][psn] = (index, value, address)
            self._arm_retry()
        self._regs.add(_OUTSTANDING, 1)
        self._m_ops.inc()
        self._m_value.inc(value)

    # -- busy-block / latency bookkeeping ------------------------------------

    def _block_busy(self, block: int) -> bool:
        """True while *block* has operations on the wire (must not move)."""
        return self._busy_blocks.get(block, 0) > 0

    def _release_block(self, block: Optional[int]) -> None:
        if block is None:
            return
        count = self._busy_blocks.get(block, 0) - 1
        if count <= 0:
            self._busy_blocks.pop(block, None)
        else:
            self._busy_blocks[block] = count

    def _retire_meta_through(self, gen: RoceRequestGenerator, psn: int) -> None:
        """Retire issue-time bookkeeping for every op at or before *psn*."""
        meta = self._op_meta[gen]
        retired = [p for p in meta if psn_distance(p, psn) < (1 << 23)]
        now = self.switch.sim.now
        for p in retired:
            block, issued = meta.pop(p)
            self._h_op_latency.observe(now - issued)
            self._release_block(block)

    def _clear_meta(self, gen: RoceRequestGenerator) -> None:
        """Drop a generator's issue-time bookkeeping (resync/suspend/close)."""
        for block, _issued in self._op_meta[gen].values():
            self._release_block(block)
        self._op_meta[gen].clear()

    def _total_inflight(self) -> int:
        return sum(len(ops) for ops in self._inflight.values())

    # -- response path ---------------------------------------------------------------

    def _owning_gen(self, packet: Packet) -> Optional[RoceRequestGenerator]:
        if self.rocegen.owns_response(packet):
            return self.rocegen
        if self._fastgen is not None and self._fastgen.owns_response(packet):
            return self._fastgen
        return None

    def try_handle(self, ctx: PipelineContext, packet: Packet) -> bool:
        """Consume atomic acknowledgements; True when handled."""
        gen = self._owning_gen(packet)
        if gen is None:
            return False
        ctx.drop()
        opcode = gen.classify_response(packet)
        if opcode == Opcode.RDMA_READ_RESPONSE_ONLY:
            # Reconcile READ after a recovery (or a breaker probe, whose
            # PSN matches nothing and is ignored here — classify_response
            # already reported it as progress).
            self._complete_reconcile(gen, packet)
            return True
        if opcode not in (Opcode.ATOMIC_ACKNOWLEDGE, Opcode.ACKNOWLEDGE):
            return True
        if gen.is_nak(packet):
            self._m_naks.inc()
            if self.config.reliable:
                # Go-back-N: retransmit rejected operations with their
                # original PSNs (never resync backwards — reusing a PSN for
                # a *different* operation would let the replay cache
                # swallow it).
                self._handle_nak_reliable(gen, packet)
            else:
                # Best-effort: the operation's value is lost; resync the
                # PSN stream so later operations are not rejected too.
                # Nothing of ours is left on this stream's wire, so the
                # busy-block holds release.
                gen.maybe_resync(packet)
                self._clear_meta(gen)
        else:
            self._m_acks.inc()
            psn = packet.require(BthHeader).psn
            self._retire_meta_through(gen, psn)
            if self.config.reliable:
                self._ack_through(gen, psn)
        if not self.config.reliable:
            self._regs.write(
                _OUTSTANDING, max(0, self._regs.read(_OUTSTANDING) - 1)
            )
        self._flush()
        return True

    # -- reliable-mode machinery (§7 extension) ---------------------------------

    def _ack_through(self, gen: RoceRequestGenerator, psn: int) -> None:
        """Retire every in-flight op at or before *psn* (RC is in order)."""
        inflight = self._inflight[gen]
        retired = [
            p
            for p in inflight
            if psn_distance(p, psn) < (1 << 23)
        ]
        for p in retired:
            index, value, _address = inflight.pop(p)
            self._committed[index] = self._committed.get(index, 0) + value
        self._regs.write(_OUTSTANDING, self._total_inflight())

    def _handle_nak_reliable(
        self, gen: RoceRequestGenerator, packet: Packet
    ) -> None:
        """A NAK names the first rejected PSN: ops before it executed, ops
        from it on never did — retransmit them verbatim, in PSN order.

        Retransmission keeps each operation bound to its original PSN, so
        a stale NAK (several queue up during one loss event) only causes
        harmless duplicate retransmissions that the responder's replay
        cache absorbs.
        """
        expected = packet.require(BthHeader).psn
        inflight = self._inflight[gen]
        for p in list(inflight):
            if psn_distance(expected, p) >= (1 << 23):
                # p < expected: already executed; its response may have
                # been lost, but the count is safely applied.
                index, value, _address = inflight.pop(p)
                self._committed[index] = self._committed.get(index, 0) + value
        # The executed prefix is done on the wire too — release its
        # busy-block holds and record its latencies.
        self._retire_meta_through(gen, (expected - 1) % (1 << 24))
        for p, (index, value, address) in inflight.items():
            gen.fetch_add(address, value % (1 << 64), psn=p)
            self._m_requeued.inc()
        self._regs.write(_OUTSTANDING, self._total_inflight())

    def _arm_retry(self) -> None:
        if self._retry_armed or self._closed or self._degraded:
            return
        self._retry_armed = True
        self._retry_snapshot = {
            gen: next(iter(ops), None) for gen, ops in self._inflight.items()
        }
        self.switch.sim.schedule(self.config.retry_timeout_ns, self._retry_check)

    def _retry_check(self) -> None:
        self._retry_armed = False
        if self._degraded or not self._total_inflight():
            return
        stalled = [
            (gen, head)
            for gen, ops in self._inflight.items()
            for head in [next(iter(ops), None)]
            if head is not None and head == self._retry_snapshot.get(gen)
        ]
        if not stalled:
            self._arm_retry()
            return
        # The oldest operation on a stream saw no progress for a full
        # window: its request or response was lost.  Retransmit verbatim
        # (same PSN, same address); the RNIC's replay cache makes this
        # idempotent.
        for gen, head in stalled:
            gen.record_timeout()
            if self._closed or self._degraded or head not in self._inflight[gen]:
                # The timeout report tripped the health monitor, which
                # closed or degraded this store reentrantly — nothing
                # left to retransmit on this stream.
                continue
            index, value, address = self._inflight[gen][head]
            gen.fetch_add(address, value % (1 << 64), psn=head)
            self._m_retx.inc()
        if not self._closed and not self._degraded:
            self._arm_retry()

    def _flush(self) -> None:
        """Issue accumulated updates while the outstanding window has room.

        Only full batches flush automatically; a partial batch stays local
        (§7's "at the cost of some delay in updates").  Operators drain
        leftovers with :meth:`flush_all`.
        """
        if self._degraded:
            return
        while self._regs.read(_OUTSTANDING) < self.config.max_outstanding:
            ready = next(
                (
                    index
                    for index, value in self._accumulators.items()
                    if abs(value) >= self.config.batch_size
                ),
                None,
            )
            if ready is None:
                return
            self._issue(ready, self._accumulators.pop(ready))

    def flush_all(self) -> None:
        """Force-issue every accumulated update (ignores batch_size).

        Values beyond the outstanding window stay pending and drain as
        acknowledgements return; call again (or keep the sim running) to
        complete the drain.  A no-op while degraded: the backlog flushes
        on :meth:`recover` instead.
        """
        if self._degraded:
            return
        while (
            self._accumulators
            and self._regs.read(_OUTSTANDING) < self.config.max_outstanding
        ):
            index, value = self._accumulators.popitem(last=False)
            self._issue(index, value)

    # -- degraded mode & recovery (DESIGN.md §11) --------------------------------

    def degrade(self, channel: Optional[RemoteMemoryChannel] = None) -> None:
        """Enter degraded mode: accumulate locally, stop driving the wire.

        Called by the channel's breaker guard when it opens.  In-flight
        operations are *suspended*, not abandoned: whether each executed
        (ACK lost in the outage) or never arrived is unknowable until
        :meth:`recover` reads the remote counters back.  The watchdog
        stands down — retransmitting into a dead channel only burns the
        health budget the breaker already spent.
        """
        if self._degraded:
            return
        self._degraded = True
        for gen in self._gens:
            for index, value, _address in self._inflight[gen].values():
                self._suspended_ops.append((index, value))
            self._inflight[gen].clear()
            self._clear_meta(gen)
        self._regs.write(_OUTSTANDING, 0)

    def degrade_fast(self) -> None:
        """Fast tier unhealthy: spill to DRAM and keep serving (§13).

        The demote-not-drop half of degraded mode.  In-flight fast-tier
        operations are suspended, every fast block is written back to its
        DRAM home, and the store keeps issuing — against DRAM only.  In
        reliable mode the suspended values reconcile immediately through
        the healthy DRAM channel: the write-back happens after any
        executed fast op, so the DRAM read sees exactly committed +
        applied and the arithmetic loses nothing.  Best-effort mode
        forgets them, as it forgets any loss.
        """
        if self._tiering is None or self._fast_degraded:
            return
        self._fast_degraded = True
        gen = self._fastgen
        if self.config.reliable:
            for index, value, _address in self._inflight[gen].values():
                self._suspended_ops.append((index, value))
        self._inflight[gen].clear()
        self._clear_meta(gen)
        self._regs.write(_OUTSTANDING, self._total_inflight())
        self._tiering.fast_enabled = False
        self._tiering.demote_all(force=True)
        if self.config.reliable and self._suspended_ops and not self._degraded:
            self._start_reconcile()

    def recover_fast(self) -> None:
        """Re-enable the fast tier after its channel came back."""
        if self._tiering is None or not self._fast_degraded:
            return
        self._fast_degraded = False
        self._tiering.fast_enabled = True

    def probe(self, channel: Optional[RemoteMemoryChannel] = None) -> None:
        """Send one canary READ down the (possibly fresh) QP.

        Rides this store's own request generator, so the response returns
        through :meth:`try_handle` and reaches the breaker as progress.
        The READ is deliberately not registered anywhere: an unknown-PSN
        response is ignored by the reconcile path.
        """
        self.rocegen.read(self.counter_address(0), ATOMIC_OPERAND_BYTES)

    def recover(self, channel: Optional[RemoteMemoryChannel] = None) -> None:
        """Leave degraded mode and flush the backlog with zero lost updates.

        Reliable mode first *reconciles* every suspended operation: one
        RDMA READ per touched counter compares the remote value against
        the committed total, deciding exactly how much of the suspended
        value already landed (the QP reconnect discarded the old replay
        cache, so blind re-issue could double-apply).  The backlog —
        degraded-mode accumulators plus whatever the reconcile found
        missing — then drains through the normal Fetch-and-Add window.
        """
        if not self._degraded:
            return
        self._degraded = False
        if self.config.reliable and self._suspended_ops:
            self._start_reconcile()
        else:
            self._suspended_ops = []
            self.flush_all()

    def _start_reconcile(self) -> None:
        suspended: Dict[int, int] = {}
        for index, value in self._suspended_ops:
            suspended[index] = suspended.get(index, 0) + value
        self._suspended_ops = []
        for index in suspended:
            self._reconcile_value[index] = (
                self._reconcile_value.get(index, 0) + suspended[index]
            )
            # Read the counter's *current* serving address — after a
            # fast-tier spill that is the freshly written-back DRAM home.
            gen, address, _block = self._locate(index, record=False)
            request = gen.read(address, ATOMIC_OPERAND_BYTES)
            self._reconcile_reads[(gen, request.require(BthHeader).psn)] = index
            self._m_reconcile_reads.inc()

    def _complete_reconcile(
        self, gen: RoceRequestGenerator, packet: Packet
    ) -> None:
        psn = packet.require(BthHeader).psn
        index = self._reconcile_reads.pop((gen, psn), None)
        if index is None:
            return  # breaker probe or stale READ — nothing to reconcile
        remote = int.from_bytes(packet.payload[:ATOMIC_OPERAND_BYTES], "big")
        committed = self._committed.get(index, 0)
        suspended = self._reconcile_value.pop(index, 0)
        # remote = committed + (whatever fraction of the suspended value
        # executed before the outage).  The clamp keeps a concurrent
        # writer or wrap-around from ever reissuing more than we
        # suspended or crediting more than we observed.
        applied = max(0, min(remote - committed, suspended))
        self._committed[index] = committed + applied
        self._m_reconciled_applied.inc(applied)
        missing = suspended - applied
        if missing:
            self._m_reconciled_reissued.inc(missing)
            self._accumulators[index] = (
                self._accumulators.get(index, 0) + missing
            )
        if not self._reconcile_reads:
            self.flush_all()

    def close(self) -> None:
        """Stop driving the channel (its member failed or left the pool).

        Abandons in-flight operations and local accumulators so the
        reliable-mode watchdog stops retransmitting into a dead channel;
        replication (the cluster layer) is what keeps the data safe.
        """
        self._closed = True
        for gen in self._gens:
            self._inflight[gen].clear()
            self._clear_meta(gen)
        self._accumulators.clear()
        self._suspended_ops = []
        self._reconcile_reads.clear()
        self._reconcile_value.clear()
        self._regs.write(_OUTSTANDING, 0)

    # -- introspection ------------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        return self._regs.read(_OUTSTANDING)

    @property
    def pending_value(self) -> int:
        """Locally accumulated value not yet issued."""
        return sum(self._accumulators.values())

    def unlanded_value(self, index: int) -> int:
        """Value bound for counter *index* not yet landed in remote DRAM.

        Switch-side accumulation, in-flight Fetch-and-Adds, and suspended
        ops awaiting their post-recovery reconcile.  A repair that writes
        an absolute value over this counter must subtract it: these deltas
        will still be applied on top of whatever the repair writes.
        """
        total = self._accumulators.get(index, 0)
        for ops in self._inflight.values():
            for op_index, value, _address in ops.values():
                if op_index == index:
                    total += value
        for op_index, value in self._suspended_ops:
            if op_index == index:
                total += value
        total += self._reconcile_value.get(index, 0)
        return total

    def read_counter_via_control_plane(self, index: int) -> int:
        """Operator-side counter read (estimation algorithms run here, §4)."""
        if self._tiering is not None:
            tier, address = self._tiering.resolve(index)
            raw = self._tiering.channel_for(tier).region.read(
                address, ATOMIC_OPERAND_BYTES
            )
            return int.from_bytes(raw, "big")
        raw = self.channel.region.read(
            self.counter_address(index), ATOMIC_OPERAND_BYTES
        )
        return int.from_bytes(raw, "big")
