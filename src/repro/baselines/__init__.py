"""Baseline systems the paper compares against."""

from .cpu_slowpath import CpuSlowPath, CpuSlowPathConfig, CpuSlowPathStats
from .l2_switch import L2SwitchProgram
from .native_rdma import NativeRdmaReport, NativeRdmaStreamer
from .pfc import PfcConfig, PfcManager, PfcStats

__all__ = [
    "CpuSlowPath",
    "CpuSlowPathConfig",
    "CpuSlowPathStats",
    "L2SwitchProgram",
    "NativeRdmaReport",
    "NativeRdmaStreamer",
    "PfcConfig",
    "PfcManager",
    "PfcStats",
]
