"""The CPU slow path: what switches fall back to when SRAM runs out.

§2.2: applications "typically fall back to the software (i.e., either on
server or switch's CPU) whenever the memory in the data plane is
insufficient" — orders of magnitude slower than the pipeline.  The model
is a single-server queue: fixed software latency per packet plus a bounded
service rate (packets per second), with a finite queue that drops under
overload, all typical of a PCIe-attached switch CPU doing software
forwarding.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional, Tuple

from ..net.packet import Packet
from ..sim.simulator import Simulator
from ..sim.units import usec


@dataclass
class CpuSlowPathConfig:
    """Software forwarding costs (switch-CPU class hardware)."""

    #: Per-packet software latency (PCIe + kernel/user processing).
    latency_ns: float = usec(30)
    #: Sustained software forwarding rate.
    rate_pps: float = 1e6
    #: Queue toward the CPU (packets); overflow drops.
    queue_packets: int = 1024


@dataclass
class CpuSlowPathStats:
    packets_handled: int = 0
    packets_dropped: int = 0
    busy_ns: float = 0.0


DeliverFn = Callable[[Packet], None]


class CpuSlowPath:
    """A software forwarding path with bounded rate and queue."""

    def __init__(
        self, sim: Simulator, config: Optional[CpuSlowPathConfig] = None
    ) -> None:
        self.sim = sim
        self.config = config if config is not None else CpuSlowPathConfig()
        self.stats = CpuSlowPathStats()
        self._queue: Deque[Tuple[Packet, DeliverFn]] = deque()
        self._busy = False

    @property
    def service_ns(self) -> float:
        return 1e9 / self.config.rate_pps

    def submit(self, packet: Packet, deliver: DeliverFn) -> bool:
        """Queue *packet* for software processing; False if dropped."""
        if len(self._queue) >= self.config.queue_packets:
            self.stats.packets_dropped += 1
            return False
        self._queue.append((packet, deliver))
        if not self._busy:
            self._serve_next()
        return True

    def _serve_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        packet, deliver = self._queue.popleft()
        self.stats.busy_ns += self.service_ns
        self.sim.schedule(self.service_ns, self._release, packet, deliver)

    def _release(self, packet: Packet, deliver: DeliverFn) -> None:
        # The packet completes after the full software latency; the CPU is
        # free to start the next packet after the (shorter) service time.
        remaining = max(0.0, self.config.latency_ns - self.service_ns)
        self.sim.schedule(remaining, self._deliver, packet, deliver)
        self._serve_next()

    def _deliver(self, packet: Packet, deliver: DeliverFn) -> None:
        self.stats.packets_handled += 1
        deliver(packet)
