"""Priority Flow Control (802.1Qbb) baseline.

The paper's alternative for lossless incast absorption (§2.1): when the
shared buffer crosses a pause threshold the switch sends PFC PAUSE frames
upstream; senders stop until a resume.  PFC avoids drops but causes
head-of-line blocking (and, at scale, deadlocks [36]) — the incast
benchmark shows the victim-flow cost against the remote packet buffer.

The model pauses the *peer interface* of each ingress port after one link
propagation delay (the PAUSE frame's flight time).  Pause is class-
agnostic (a single priority), which is all the experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..net.packet import Packet
from ..switches.switch import ProgrammableSwitch
from ..switches.traffic_manager import HookVerdict, PortQueue
from ..sim.units import kib


@dataclass
class PfcConfig:
    """Pause/resume thresholds on shared-buffer occupancy."""

    pause_threshold_bytes: int = kib(96)
    resume_threshold_bytes: int = kib(48)


@dataclass
class PfcStats:
    pause_events: int = 0
    resume_events: int = 0


class PfcManager:
    """Asserts PAUSE upstream when the switch buffer runs hot."""

    def __init__(
        self,
        switch: ProgrammableSwitch,
        upstream_ports: Sequence[int],
        config: Optional[PfcConfig] = None,
    ) -> None:
        self.switch = switch
        self.upstream_ports = list(upstream_ports)
        self.config = config if config is not None else PfcConfig()
        if (
            self.config.resume_threshold_bytes
            >= self.config.pause_threshold_bytes
        ):
            raise ValueError("resume threshold must be below pause threshold")
        self.stats = PfcStats()
        self.paused = False
        if switch.tm.egress_hook is not None:
            raise RuntimeError("switch TM already has an egress hook")
        switch.tm.egress_hook = self._observe_enqueue
        switch.tm.dequeue_listeners.append(self._observe_dequeue)

    def _observe_enqueue(
        self, port: int, packet: Packet, queue: PortQueue
    ) -> HookVerdict:
        if (
            not self.paused
            and self.switch.tm.used_bytes + packet.buffer_len
            >= self.config.pause_threshold_bytes
        ):
            self._set_paused(True)
        return HookVerdict.PASS

    def _observe_dequeue(self, port: int, packet: Packet, queue: PortQueue) -> None:
        if (
            self.paused
            and self.switch.tm.used_bytes <= self.config.resume_threshold_bytes
        ):
            self._set_paused(False)

    def _set_paused(self, paused: bool) -> None:
        self.paused = paused
        if paused:
            self.stats.pause_events += 1
        else:
            self.stats.resume_events += 1
        for port in self.upstream_ports:
            iface = self.switch.port_interface(port)
            peer = iface.peer
            if peer is None or iface.link is None:
                continue
            # The PAUSE frame takes one propagation delay to reach the peer.
            self.switch.sim.schedule(
                iface.link.propagation_ns, peer.set_paused, paused
            )
