"""A plain L2 learning switch program.

This is the paper's Fig 3a baseline: "a simple P4 implementation of L2
switch without doing anything special" — MAC learning plus flooding on
unknown destinations.
"""

from __future__ import annotations

from ..net.headers import EthernetHeader
from ..net.packet import Packet
from ..switches.pipeline import PipelineContext, SwitchProgram
from ..switches.tables import ActionEntry, ExactMatchTable, TableFullError


class L2SwitchProgram(SwitchProgram):
    """MAC-learning L2 forwarding with a bounded MAC table."""

    def __init__(self, mac_table_capacity: int = 4096) -> None:
        self.mac_table = ExactMatchTable("l2.mac", mac_table_capacity)

    def learn(self, mac, port: int) -> None:
        """Install/refresh the source-MAC → port binding."""
        try:
            self.mac_table.insert(mac, ActionEntry("forward", {"port": port}))
        except TableFullError:
            # A full MAC table degrades to flooding — exactly the memory
            # pressure the paper describes; never a hard error.
            pass

    def on_ingress(self, ctx: PipelineContext, packet: Packet) -> None:
        eth = packet.find(EthernetHeader)
        if eth is None:
            ctx.drop()
            return
        if ctx.in_port is not None and not eth.src.is_broadcast:
            self.learn(eth.src, ctx.in_port)
        if eth.dst.is_broadcast or eth.dst.is_multicast:
            ctx.flood()
            return
        entry = self.mac_table.lookup(eth.dst)
        if entry is not None and entry.action == "forward":
            ctx.forward(entry.params["port"])
        else:
            ctx.flood()
