"""Native server-to-server RDMA throughput (the §5 packet-buffer baseline).

"As a baseline, we test native server-to-server RDMA WRITE and READ
throughput.  The baseline is only 4.4% faster."  A client host posts a
stream of one-sided operations to the memory server's RNIC through the
switch, with a bounded outstanding window, and the harness reports payload
goodput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..hosts.server import Host, MemoryServer
from ..rdma.constants import Opcode
from ..rdma.memory import MemoryRegion
from ..rdma.qp import Completion
from ..rdma.verbs import RdmaClient, connect_qps
from ..sim.simulator import Simulator
from ..sim.units import SEC


@dataclass
class NativeRdmaReport:
    operations: int
    payload_bytes: int
    duration_ns: float
    failures: int

    @property
    def goodput_bps(self) -> float:
        if self.duration_ns <= 0:
            return 0.0
        return self.payload_bytes * 8 * SEC / self.duration_ns


class NativeRdmaStreamer:
    """Streams WRITEs or READs with a fixed outstanding window."""

    def __init__(
        self,
        sim: Simulator,
        client: Host,
        server: MemoryServer,
        region: MemoryRegion,
        opcode: Opcode = Opcode.RDMA_WRITE_ONLY,
        message_bytes: int = 1500,
        operations: int = 1000,
        window: int = 16,
    ) -> None:
        if opcode not in (Opcode.RDMA_WRITE_ONLY, Opcode.RDMA_READ_REQUEST):
            raise ValueError(f"unsupported streaming opcode: {opcode}")
        self.sim = sim
        self.opcode = opcode
        self.region = region
        self.message_bytes = message_bytes
        self.operations = operations
        self.window = window
        client_qp = client.rnic.create_qp()
        server_qp = server.rnic.create_qp()
        connect_qps(client_qp, server_qp)
        self.client = RdmaClient(client.rnic, client_qp)
        self._issued = 0
        self._completed = 0
        self._failures = 0
        self._payload = b"\xab" * message_bytes
        self._start_ns: Optional[float] = None
        self._end_ns: float = 0.0
        # Spread operations across the region, wrapping.
        self._slots = max(1, region.length // message_bytes)

    def start(self, at_ns: float = 0.0) -> None:
        self.sim.schedule_at(max(at_ns, self.sim.now), self._prime)

    def _prime(self) -> None:
        self._start_ns = self.sim.now
        for _ in range(min(self.window, self.operations)):
            self._issue_next()

    def _address(self, op_index: int) -> int:
        slot = op_index % self._slots
        return self.region.base_address + slot * self.message_bytes

    def _issue_next(self) -> None:
        if self._issued >= self.operations:
            return
        address = self._address(self._issued)
        self._issued += 1
        if self.opcode == Opcode.RDMA_WRITE_ONLY:
            self.client.write(
                address, self.region.rkey, self._payload, self._on_complete
            )
        else:
            self.client.read(
                address, self.region.rkey, self.message_bytes, self._on_complete
            )

    def _on_complete(self, completion: Completion) -> None:
        self._completed += 1
        if not completion.success:
            self._failures += 1
        self._end_ns = self.sim.now
        self._issue_next()

    @property
    def done(self) -> bool:
        return self._completed >= self.operations

    def report(self) -> NativeRdmaReport:
        start = self._start_ns if self._start_ns is not None else 0.0
        return NativeRdmaReport(
            operations=self._completed,
            payload_bytes=self._completed * self.message_bytes,
            duration_ns=self._end_ns - start,
            failures=self._failures,
        )
