"""Deterministic random-number management.

Experiments need reproducible randomness across many components (workload
generators, hash salts, jitter).  :class:`SeedSequence` hands out
independent ``random.Random`` streams derived from a single root seed, so
adding a new consumer never perturbs the streams of existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class SeedSequence:
    """Derive named, independent RNG streams from one root seed.

    >>> seeds = SeedSequence(7)
    >>> a = seeds.stream("workload")
    >>> b = seeds.stream("jitter")
    >>> a is seeds.stream("workload")   # streams are memoised by name
    True
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def derive_seed(self, name: str) -> int:
        """Return a stable 64-bit seed for *name* under this root seed."""
        digest = hashlib.sha256(f"{self.root_seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def stream(self, name: str) -> random.Random:
        """Return the (memoised) RNG stream registered under *name*."""
        if name not in self._streams:
            self._streams[name] = random.Random(self.derive_seed(name))
        return self._streams[name]

    def spawn(self, name: str) -> "SeedSequence":
        """Return a child sequence rooted at this sequence's seed for *name*."""
        return SeedSequence(self.derive_seed(name))
