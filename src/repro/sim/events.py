"""Event objects for the discrete-event simulator.

An :class:`Event` is a callback scheduled at an absolute simulated time.
Events are totally ordered by ``(time, sequence)`` where the sequence number
is assigned at scheduling time, so two events scheduled for the same instant
fire in FIFO order.  This makes runs deterministic, an invariant the test
suite checks explicitly.

Events are *slot-light*: an :class:`Event` subclasses ``list`` and is the
heap entry itself, laid out as ``[time, seq, callback, args]``.  The heap
therefore compares entries with the C implementation of list comparison
(time first, then the unique sequence number — the comparison never
reaches the callback), and scheduling allocates exactly one object.
Cancellation nulls the callback slot in place — a single store, no
simulator bookkeeping on the hot path — and the simulator purges cancelled
entries lazily when they surface at the top of the heap.
"""

from __future__ import annotations

from typing import Any, Callable, Tuple

#: Indices into the event layout, shared with the simulator's hot loop.
TIME = 0
SEQ = 1
CALLBACK = 2
ARGS = 3


class Event(list):
    """A scheduled callback; also the simulator's heap entry.

    Instances are created by :meth:`repro.sim.simulator.Simulator.schedule`;
    user code normally only keeps a reference in order to :meth:`cancel`.
    """

    __slots__ = ()

    @property
    def time(self) -> float:
        """Absolute simulated firing time in nanoseconds."""
        return self[TIME]

    @property
    def seq(self) -> int:
        """Scheduling sequence number (FIFO tie-break at equal times)."""
        return self[SEQ]

    @property
    def callback(self) -> Callable[..., Any]:
        return self[CALLBACK]

    @property
    def args(self) -> Tuple[Any, ...]:
        return self[ARGS]

    @property
    def cancelled(self) -> bool:
        return self[CALLBACK] is None

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when it is popped.

        Cancelling is O(1) — a single in-place store; the entry stays in
        the heap until its time comes (lazy deletion) but is excluded from
        :attr:`~repro.sim.simulator.Simulator.active_events`, which counts
        live callbacks.  Cancelling an already-cancelled event is a no-op;
        cancelling an already-fired event has no effect on the simulation
        (its callback has already run).
        """
        self[CALLBACK] = None

    def __repr__(self) -> str:
        callback = self[CALLBACK]
        if callback is None:
            return f"<Event t={self[TIME]:.1f}ns #{self[SEQ]} cancelled>"
        name = getattr(callback, "__qualname__", repr(callback))
        return f"<Event t={self[TIME]:.1f}ns #{self[SEQ]} {name}>"
