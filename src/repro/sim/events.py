"""Event objects for the discrete-event simulator.

An :class:`Event` is a callback scheduled at an absolute simulated time.
Events are totally ordered by ``(time, sequence)`` where the sequence number
is assigned at scheduling time, so two events scheduled for the same instant
fire in FIFO order.  This makes runs deterministic, an invariant the test
suite checks explicitly.
"""

from __future__ import annotations

from typing import Any, Callable, Tuple


class Event:
    """A scheduled callback.

    Instances are created by :meth:`repro.sim.simulator.Simulator.schedule`;
    user code normally only keeps a reference in order to :meth:`cancel`.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when it is popped.

        Cancelling is O(1); the event stays in the heap until its time
        comes, which is the standard lazy-deletion approach.
        Cancelling an already-fired or already-cancelled event is a no-op.
        """
        self.cancelled = True

    # Heap ordering -- time first, then FIFO by sequence number.
    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.1f}ns #{self.seq} {name}{state}>"
