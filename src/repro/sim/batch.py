"""The columnar batch kernel: a bucketed calendar with cohort draining.

:class:`BatchSimulator` is the opt-in high-throughput twin of the scalar
:class:`~repro.sim.simulator.Simulator`.  It fires events in exactly the
same ``(time, scheduling-order)`` sequence — fixed-seed experiments
produce byte-identical wire traces in either kernel — but stores and
drains them columnar instead of one heap entry at a time:

* **Time lane** — a binary heap of *bare floats*, one per **distinct**
  pending timestamp.  ``heapq`` compares unboxed C doubles; the Python
  ordering protocol is never entered, and a cohort of N same-time events
  costs one sift instead of N.  (An ``array('d')`` snapshot of the lane
  is exported by :meth:`BatchSimulator.times_lane` for introspection.)
* **Cohort lanes** — a hashed timer wheel keyed by exact timestamp:
  ``{time: [entry, ...]}``.  Events land in their bucket by one dict
  probe + one list append; within a bucket, append order *is* scheduling
  order, so the FIFO tie-break needs no sequence comparisons at all.
  This is what makes the dominant fixed-delay classes (link propagation,
  serialization completion, pipeline latency, retransmit watchdogs)
  cheap: every event of a cohort born at the same instant with the same
  delay lands in the same bucket.
* **Vectorised expiry** — ``run()`` pops one timestamp, takes the whole
  bucket, and fires it in a tight loop: no per-event heap traffic, no
  per-event deadline checks on the common path.

Cohort entries come in four shapes, cheapest first:

==================  ========================================================
``callable``        a no-argument fire-and-forget :meth:`Simulator.post`
``tuple``           ``(interface, packet)`` — a link delivery posted via
                    :meth:`Simulator.post_delivery`; **adjacent** deliveries
                    to the same interface are coalesced into one
                    ``interface.deliver_batch([...])`` call
``list``            ``[callback, args]`` — a fire-and-forget post with args
:class:`Event`      a cancellable ``schedule()`` entry (list subclass),
                    exactly as in the scalar kernel
==================  ========================================================

Delivery coalescing is *adjacency-based by construction*: only an
unbroken run of same-interface deliveries inside one cohort merges, so
no other event — not even one at the same timestamp — is ever reordered
across a delivery.  That invariant is what keeps batch mode bit-exact;
see DESIGN.md §5.2 for the full argument.
"""

from __future__ import annotations

from array import array
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, Dict, List, Optional

from . import simulator as _kernel
from .events import Event
from .simulator import SimulationError, Simulator


class BatchSimulator(Simulator):
    """Bucketed-calendar simulation kernel (see module docstring).

    Construct directly, or select process-wide with
    :func:`~repro.sim.simulator.set_default_kernel` /
    :func:`~repro.sim.simulator.kernel_mode` so that every
    ``Simulator()`` in a testbed builds one.
    """

    __slots__ = ("_buckets", "_times", "_cache_time", "_cache_bucket")

    kernel = "batch"

    def __init__(self, kernel: Optional[str] = None) -> None:
        super().__init__()
        #: Hashed timer wheel: exact timestamp -> append-ordered cohort.
        self._buckets: Dict[float, List[Any]] = {}
        #: Time lane: heap of bare floats, one per distinct timestamp.
        #: May briefly hold duplicates (bucket drained then recreated at
        #: the same instant); the drain loop skips stale entries.
        self._times: List[float] = []
        # One-slot bucket cache: the dominant fixed-delay classes hit the
        # same target timestamp many times in a row (a whole cohort
        # rescheduling with the same delay), so the dict probe is skipped.
        self._cache_time: float = -1.0
        self._cache_bucket: Optional[List[Any]] = None

    # -- scheduling ------------------------------------------------------------

    def _bucket_at(self, t: float) -> List[Any]:
        if t == self._cache_time:
            bucket = self._cache_bucket
            assert bucket is not None
            return bucket
        bucket = self._buckets.get(t)
        if bucket is None:
            self._buckets[t] = bucket = []
            _heappush(self._times, t)
        self._cache_time = t
        self._cache_bucket = bucket
        return bucket

    def schedule(
        self, delay_ns: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        if delay_ns < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay={delay_ns}ns)"
            )
        t = self._now + delay_ns
        seq = self._seq
        self._seq = seq + 1
        event = Event((t, seq, callback, args))
        self._bucket_at(t).append(event)
        return event

    def schedule_at(
        self, time_ns: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at t={time_ns}ns, now is t={self._now}ns"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event((time_ns, seq, callback, args))
        self._bucket_at(time_ns).append(event)
        return event

    def post(self, delay_ns: float, callback: Callable[..., Any], *args: Any) -> None:
        if delay_ns < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay={delay_ns}ns)"
            )
        t = self._now + delay_ns
        if t == self._cache_time:
            bucket = self._cache_bucket
        else:
            bucket = self._buckets.get(t)
            if bucket is None:
                self._buckets[t] = bucket = []
                _heappush(self._times, t)
            self._cache_time = t
            self._cache_bucket = bucket
        if args:
            bucket.append([callback, args])
        else:
            bucket.append(callback)

    def post_delivery(self, delay_ns: float, interface: Any, packet: Any) -> None:
        if delay_ns < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay={delay_ns}ns)"
            )
        t = self._now + delay_ns
        if t == self._cache_time:
            bucket = self._cache_bucket
        else:
            bucket = self._buckets.get(t)
            if bucket is None:
                self._buckets[t] = bucket = []
                _heappush(self._times, t)
            self._cache_time = t
            self._cache_bucket = bucket
        bucket.append((interface, packet))

    # -- introspection ---------------------------------------------------------

    @property
    def active_events(self) -> int:
        count = 0
        for bucket in self._buckets.values():
            for entry in bucket:
                if entry.__class__ is Event:
                    if entry[2] is not None:
                        count += 1
                else:
                    # Posted entries have no cancellation handle: live.
                    count += 1
        return count

    def times_lane(self) -> array:
        """Snapshot of the time lane as a typed ``array('d')`` (sorted).

        One entry per pending distinct timestamp — the wheel's bucket
        keys, not per-event times.  Introspection only.
        """
        return array("d", sorted(t for t in set(self._times) if t in self._buckets))

    # -- execution -------------------------------------------------------------

    def step(self) -> bool:
        """Fire the next pending event (cancelled entries purged silently)."""
        buckets = self._buckets
        times = self._times
        while times:
            t = times[0]
            bucket = buckets.get(t)
            if bucket is None:
                _heappop(times)  # stale duplicate
                continue
            for i, entry in enumerate(bucket):
                if entry.__class__ is Event and entry[2] is None:
                    continue
                # Found the next live entry: detach everything up to and
                # including it, keep the rest in place.
                del bucket[: i + 1]
                if not bucket:
                    del buckets[t]
                    _heappop(times)
                if t == self._cache_time:
                    self._cache_time = -1.0
                    self._cache_bucket = None
                self._now = t
                self._events_processed += 1
                _kernel._events_fired_total += 1
                self._fire(entry)
                return True
            # Bucket held only cancelled entries: purge it.
            del buckets[t]
            _heappop(times)
            if t == self._cache_time:
                self._cache_time = -1.0
                self._cache_bucket = None
        return False

    @staticmethod
    def _fire(entry: Any) -> None:
        cls = entry.__class__
        if cls is tuple:
            entry[0].deliver(entry[1])
        elif cls is list:
            entry[0](*entry[1])
        elif cls is Event:
            args = entry[3]
            if args:
                entry[2](*args)
            else:
                entry[2]()
        else:
            entry()

    def run(
        self,
        until_ns: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired = 0
        try:
            if until_ns is None and max_events is None:
                fired = self._run_tight()
            else:
                fired = self._run_bounded(until_ns, max_events)
        finally:
            self._running = False
            self._events_processed += fired
            _kernel._events_fired_total += fired
        if until_ns is not None and self._now < until_ns:
            self._now = until_ns

    def _run_tight(self) -> int:
        """Drain everything: the hottest loop in batch mode.

        Pops one timestamp per cohort and fires the whole bucket inline.
        Adjacent ``post_delivery`` entries for the same interface are
        accumulated and flushed as one ``deliver_batch`` call; the
        accumulator is flushed before any other entry kind fires, so
        firing order is exactly scheduling order.
        """
        buckets = self._buckets
        times = self._times
        pop = _heappop
        _event = Event
        _tuple = tuple
        _list = list
        fired = 0
        run_iface = None  # current delivery-run interface (None = no run)
        run_packets: List[Any] = []
        while times:
            t = pop(times)
            bucket = buckets.pop(t, None)
            if bucket is None:
                continue  # stale duplicate timestamp
            if t == self._cache_time:
                # New same-instant work must land in a *fresh* bucket
                # (drained on the next spin) — never in this cohort,
                # which is being iterated.
                self._cache_time = -1.0
                self._cache_bucket = None
            self._now = t
            for entry in bucket:
                cls = entry.__class__
                if cls is _tuple:
                    iface = entry[0]
                    if run_iface is iface:
                        run_packets.append(entry[1])
                    else:
                        if run_iface is not None:
                            fired += len(run_packets)
                            if len(run_packets) == 1:
                                run_iface.deliver(run_packets[0])
                            else:
                                run_iface.deliver_batch(run_packets)
                        run_iface = iface
                        run_packets = [entry[1]]
                    continue
                if run_iface is not None:
                    fired += len(run_packets)
                    if len(run_packets) == 1:
                        run_iface.deliver(run_packets[0])
                    else:
                        run_iface.deliver_batch(run_packets)
                    run_iface = None
                if cls is _event:
                    callback = entry[2]
                    if callback is not None:
                        fired += 1
                        args = entry[3]
                        if args:
                            callback(*args)
                        else:
                            callback()
                elif cls is _list:
                    fired += 1
                    entry[0](*entry[1])
                else:
                    fired += 1
                    entry()
            if run_iface is not None:
                fired += len(run_packets)
                if len(run_packets) == 1:
                    run_iface.deliver(run_packets[0])
                else:
                    run_iface.deliver_batch(run_packets)
                run_iface = None
        return fired

    def _run_bounded(
        self, until_ns: Optional[float], max_events: Optional[int]
    ) -> int:
        """Deadline/budget drain: same order, per-event bookkeeping.

        No delivery coalescing here — a budget may stop between two
        deliveries, and slice-by-slice runs must match a straight run
        event for event (the determinism suite checks exactly that).
        """
        buckets = self._buckets
        times = self._times
        fired = 0
        while times:
            t = times[0]
            bucket = buckets.get(t)
            if bucket is None:
                _heappop(times)  # stale duplicate
                continue
            if until_ns is not None and t > until_ns:
                break
            if max_events is not None and fired >= max_events:
                break
            _heappop(times)
            del buckets[t]
            if t == self._cache_time:
                self._cache_time = -1.0
                self._cache_bucket = None
            self._now = t
            n = len(bucket)
            i = 0
            while i < n:
                entry = bucket[i]
                if entry.__class__ is Event and entry[2] is None:
                    i += 1  # lazily-deleted: purged with its cohort
                    continue
                if max_events is not None and fired >= max_events:
                    # Reinsert the unfired tail *ahead of* any bucket
                    # recreated at t by the events just fired (the tail
                    # was scheduled first).
                    tail = bucket[i:]
                    recreated = buckets.get(t)
                    buckets[t] = tail if recreated is None else tail + recreated
                    _heappush(times, t)
                    self._cache_time = -1.0
                    self._cache_bucket = None
                    return fired
                i += 1
                fired += 1
                self._fire(entry)
        return fired
