"""Unit conventions and conversion helpers for the simulator.

Conventions used throughout the library:

* **time** is expressed in nanoseconds (``float``),
* **data rates** are expressed in bits per second (``float``),
* **sizes** are expressed in bytes (``int``).

Keeping a single convention avoids a whole class of unit bugs; these
helpers make call sites read naturally (``gbps(40)``, ``usec(1.5)``).
"""

from __future__ import annotations

# -- time ------------------------------------------------------------------

#: One nanosecond (the base time unit).
NSEC = 1.0
#: One microsecond in nanoseconds.
USEC = 1_000.0
#: One millisecond in nanoseconds.
MSEC = 1_000_000.0
#: One second in nanoseconds.
SEC = 1_000_000_000.0


def nsec(value: float) -> float:
    """Return *value* nanoseconds, in nanoseconds (identity; for symmetry)."""
    return value * NSEC


def usec(value: float) -> float:
    """Return *value* microseconds, in nanoseconds."""
    return value * USEC


def msec(value: float) -> float:
    """Return *value* milliseconds, in nanoseconds."""
    return value * MSEC


def sec(value: float) -> float:
    """Return *value* seconds, in nanoseconds."""
    return value * SEC


def to_usec(time_ns: float) -> float:
    """Convert a time in nanoseconds to microseconds."""
    return time_ns / USEC


def to_msec(time_ns: float) -> float:
    """Convert a time in nanoseconds to milliseconds."""
    return time_ns / MSEC


def to_sec(time_ns: float) -> float:
    """Convert a time in nanoseconds to seconds."""
    return time_ns / SEC


# -- data rates ------------------------------------------------------------

#: One bit per second (the base rate unit).
BPS = 1.0
#: One kilobit per second in bits per second.
KBPS = 1e3
#: One megabit per second in bits per second.
MBPS = 1e6
#: One gigabit per second in bits per second.
GBPS = 1e9


def kbps(value: float) -> float:
    """Return *value* kilobits/second, in bits/second."""
    return value * KBPS


def mbps(value: float) -> float:
    """Return *value* megabits/second, in bits/second."""
    return value * MBPS


def gbps(value: float) -> float:
    """Return *value* gigabits/second, in bits/second."""
    return value * GBPS


def to_gbps(rate_bps: float) -> float:
    """Convert a rate in bits/second to gigabits/second."""
    return rate_bps / GBPS


# -- sizes -----------------------------------------------------------------

#: One kibibyte in bytes.
KIB = 1024
#: One mebibyte in bytes.
MIB = 1024 * 1024
#: One gibibyte in bytes.
GIB = 1024 * 1024 * 1024


def kib(value: float) -> int:
    """Return *value* KiB, in bytes."""
    return int(value * KIB)


def mib(value: float) -> int:
    """Return *value* MiB, in bytes."""
    return int(value * MIB)


def gib(value: float) -> int:
    """Return *value* GiB, in bytes."""
    return int(value * GIB)


# -- derived helpers ---------------------------------------------------------

def transmission_delay_ns(size_bytes: int, rate_bps: float) -> float:
    """Time in nanoseconds to serialize *size_bytes* onto a *rate_bps* link.

    >>> transmission_delay_ns(1500, gbps(40))
    300.0
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    return size_bytes * 8 * SEC / rate_bps


def rate_bps_from_bytes(total_bytes: int, duration_ns: float) -> float:
    """Average rate in bits/second for *total_bytes* over *duration_ns*.

    Returns 0.0 for a zero-length interval rather than raising, because
    monitors routinely compute rates over possibly-empty windows.
    """
    if duration_ns <= 0:
        return 0.0
    return total_bytes * 8 * SEC / duration_ns
