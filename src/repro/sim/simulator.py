"""The discrete-event simulator driving every experiment in this library.

The simulator is a classic calendar loop: a binary heap of
:class:`~repro.sim.events.Event` objects, a monotonically advancing clock in
nanoseconds, and ``run`` variants that drain the heap up to a deadline or an
event budget.  All network elements (links, switches, RNICs, hosts) interact
only through scheduled events, so a simulation is fully reproducible given
its seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from .events import Event


class SimulationError(RuntimeError):
    """Raised for misuse of the simulator (e.g. scheduling in the past)."""


class Simulator:
    """A discrete-event simulation kernel.

    Example::

        sim = Simulator()
        sim.schedule(100.0, print, "hello at t=100ns")
        sim.run()
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._now: float = 0.0
        self._seq: int = 0
        self._events_processed: int = 0
        self._running: bool = False

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    # -- scheduling ------------------------------------------------------------

    def schedule(
        self, delay_ns: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule *callback(*args)* to fire ``delay_ns`` from now.

        Returns the :class:`Event`, which the caller may :meth:`~Event.cancel`.
        A negative delay is an error; a zero delay fires after all events
        already scheduled for the current instant (FIFO).
        """
        if delay_ns < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay={delay_ns}ns)"
            )
        return self.schedule_at(self._now + delay_ns, callback, *args)

    def schedule_at(
        self, time_ns: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule *callback(*args)* at absolute time ``time_ns``."""
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at t={time_ns}ns, now is t={self._now}ns"
            )
        event = Event(time_ns, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    # -- execution -------------------------------------------------------------

    def step(self) -> bool:
        """Fire the next pending event.

        Returns ``True`` if an event fired, ``False`` if the heap is empty.
        Cancelled events are skipped silently.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(
        self,
        until_ns: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run until the heap is empty, a deadline, or an event budget.

        :param until_ns: absolute stop time; events scheduled strictly after
            it remain pending and the clock is advanced to ``until_ns``.
        :param max_events: stop after firing this many events (a safety
            valve for runaway feedback loops in experiments).
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._heap:
                if max_events is not None and fired >= max_events:
                    break
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until_ns is not None and head.time > until_ns:
                    break
                if self.step():
                    fired += 1
        finally:
            self._running = False
        if until_ns is not None and self._now < until_ns:
            self._now = until_ns

    def run_for(self, duration_ns: float, **kwargs: Any) -> None:
        """Run for ``duration_ns`` of simulated time from the current clock."""
        self.run(until_ns=self._now + duration_ns, **kwargs)

    def __repr__(self) -> str:
        return (
            f"<Simulator t={self._now:.1f}ns pending={len(self._heap)} "
            f"fired={self._events_processed}>"
        )
