"""The discrete-event simulator driving every experiment in this library.

The simulator is a classic calendar loop: a binary heap of scheduled
callbacks, a monotonically advancing clock in nanoseconds, and ``run``
variants that drain the heap up to a deadline or an event budget.  All
network elements (links, switches, RNICs, hosts) interact only through
scheduled events, so a simulation is fully reproducible given its seed.

Fast-path notes — this loop is the hottest code in the repository (every
simulated packet costs several events):

* Heap entries are the :class:`~repro.sim.events.Event` objects
  themselves, slot-light ``list`` subclasses laid out as
  ``[time, seq, callback, args]``.  ``heapq`` compares them with C list
  comparison (time, then the unique sequence number) instead of a Python
  ``__lt__`` per sift step, and scheduling allocates one object.
* ``run()`` drains the heap inline — no per-event ``step()`` call — with
  the heap and ``heappop`` hoisted into locals, a dedicated tightest loop
  for the common "no deadline, no budget" case, and a no-unpack call for
  argument-less callbacks.
* Cancellation nulls the event's callback slot in place (see
  :meth:`Event.cancel`); cancelled entries are skipped and purged when
  they surface at the top of the heap — including at a ``run(until_ns=…)``
  deadline boundary, where they are purged rather than left pending.
  :attr:`active_events` counts only live callbacks, so cancelled events
  never inflate it; the count is computed on demand (a cold-path scan)
  to keep scheduling and dispatch free of bookkeeping.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from typing import Any, Callable, Iterator, List, Optional, TYPE_CHECKING

from .events import ARGS, CALLBACK, TIME, Event
from ..obs import Observability

if TYPE_CHECKING:
    from ..net.node import Interface

_heappush = heapq.heappush
_heappop = heapq.heappop


class SimulationError(RuntimeError):
    """Raised for misuse of the simulator (e.g. scheduling in the past)."""


#: Names of the available kernel implementations (see :func:`set_default_kernel`).
KERNELS = ("scalar", "batch")

#: The kernel ``Simulator()`` instantiates when no explicit choice is made.
_default_kernel = "scalar"


def default_kernel() -> str:
    """The kernel mode a bare ``Simulator()`` call currently selects."""
    return _default_kernel


def set_default_kernel(mode: str) -> None:
    """Select the kernel every subsequent ``Simulator()`` builds.

    ``"scalar"`` (the default) is the classic binary-heap loop below;
    ``"batch"`` is the columnar bucketed calendar in
    :mod:`repro.sim.batch`.  Both fire events in identical ``(time,
    scheduling-order)`` sequence — batch mode is a throughput
    optimisation, not a semantic switch — so fixed-seed runs produce
    byte-identical wire traces in either mode (asserted by the
    determinism and wire-fidelity test suites).
    """
    global _default_kernel
    if mode not in KERNELS:
        raise SimulationError(f"unknown kernel {mode!r}, expected one of {KERNELS}")
    _default_kernel = mode


@contextmanager
def kernel_mode(mode: str) -> Iterator[str]:
    """Scope the default kernel: ``with kernel_mode("batch"): ...``."""
    previous = _default_kernel
    set_default_kernel(mode)
    try:
        yield mode
    finally:
        set_default_kernel(previous)


#: Process-wide total of events fired across all Simulator instances,
#: sampled by the profiling harness (events/sec without per-event hooks).
_events_fired_total = 0


def total_events_fired() -> int:
    """Events fired by every simulator in this process since import."""
    return _events_fired_total


class Simulator:
    """A discrete-event simulation kernel.

    Example::

        sim = Simulator()
        sim.schedule(100.0, print, "hello at t=100ns")
        sim.run()
    """

    __slots__ = ("_heap", "_now", "_seq", "_events_processed", "_running", "obs")

    #: Kernel mode name; the batch subclass overrides it.
    kernel = "scalar"

    def __new__(cls, kernel: Optional[str] = None) -> "Simulator":
        # A bare ``Simulator()`` honours the process default (see
        # set_default_kernel); an explicit subclass always wins.
        if cls is Simulator:
            mode = kernel if kernel is not None else _default_kernel
            if mode != "scalar":
                if mode not in KERNELS:
                    raise SimulationError(
                        f"unknown kernel {mode!r}, expected one of {KERNELS}"
                    )
                from .batch import BatchSimulator

                return object.__new__(BatchSimulator)
        return object.__new__(cls)

    def __init__(self, kernel: Optional[str] = None) -> None:
        # ``kernel`` is consumed by __new__ (it selects the class).
        self._heap: List[Event] = []
        self._now: float = 0.0
        self._seq: int = 0
        #: Observability handle shared by everything in this simulation
        #: (the session-wide one when a CLI/benchmark run installed it).
        self.obs: Observability = Observability.adopt()
        self._events_processed: int = 0
        self._running: bool = False

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (cancelled events excluded).

        Updated when :meth:`run`/:meth:`step` return, not per event.
        """
        return self._events_processed

    @property
    def active_events(self) -> int:
        """Number of scheduled events that are neither fired nor cancelled.

        Cancelled entries stay in the heap until their time comes (lazy
        deletion) but are excluded here, so this is the true amount of
        outstanding work.  Computed by scanning the heap: introspection is
        the cold path; scheduling and dispatch pay for no bookkeeping.
        """
        return sum(1 for event in self._heap if event[CALLBACK] is not None)

    @property
    def pending_events(self) -> int:
        """Alias for :attr:`active_events`.

        Historical note: this used to report the raw heap length,
        *including* lazily-deleted cancelled events; it now excludes them.
        """
        return self.active_events

    # -- scheduling ------------------------------------------------------------

    def schedule(
        self, delay_ns: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule *callback(*args)* to fire ``delay_ns`` from now.

        Returns the :class:`Event`, which the caller may :meth:`~Event.cancel`.
        A negative delay is an error; a zero delay fires after all events
        already scheduled for the current instant (FIFO).
        """
        if delay_ns < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay={delay_ns}ns)"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event((self._now + delay_ns, seq, callback, args))
        _heappush(self._heap, event)
        return event

    def schedule_at(
        self, time_ns: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule *callback(*args)* at absolute time ``time_ns``."""
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at t={time_ns}ns, now is t={self._now}ns"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event((time_ns, seq, callback, args))
        _heappush(self._heap, event)
        return event

    # -- fire-and-forget scheduling --------------------------------------------
    #
    # The hot paths (link delivery, serializer completion, switch pipeline
    # passes, RNIC engines) never cancel the events they schedule, so they
    # do not need the Event handle back.  ``post``/``post_delivery`` make
    # that contract explicit: the scalar kernel implements them as plain
    # schedules, while the batch kernel stores them as bare cohort entries
    # (no Event allocation, no heap sift) and — for deliveries — coalesces
    # adjacent same-interface arrivals into one batched callback.  Firing
    # order is identical to schedule() in both kernels.

    def post(self, delay_ns: float, callback: Callable[..., Any], *args: Any) -> None:
        """Schedule *callback(*args)* with no cancellation handle."""
        if delay_ns < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay={delay_ns}ns)"
            )
        seq = self._seq
        self._seq = seq + 1
        _heappush(self._heap, Event((self._now + delay_ns, seq, callback, args)))

    def post_delivery(self, delay_ns: float, interface: "Interface", packet: Any) -> None:
        """Schedule ``interface.deliver(packet)`` with no cancellation handle.

        This is the tagged form of :meth:`post` the batch kernel keys its
        link-delivery coalescing on; the scalar kernel treats it exactly
        like today's ``schedule(delay, interface.deliver, packet)``.
        """
        if delay_ns < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay={delay_ns}ns)"
            )
        seq = self._seq
        self._seq = seq + 1
        _heappush(
            self._heap,
            Event((self._now + delay_ns, seq, interface.deliver, (packet,))),
        )

    # -- execution -------------------------------------------------------------

    def step(self) -> bool:
        """Fire the next pending event.

        Returns ``True`` if an event fired, ``False`` if the heap is empty.
        Cancelled events are skipped silently.
        """
        global _events_fired_total
        heap = self._heap
        while heap:
            event = _heappop(heap)
            callback = event[CALLBACK]
            if callback is None:
                continue
            self._now = event[TIME]
            self._events_processed += 1
            _events_fired_total += 1
            callback(*event[ARGS])
            return True
        return False

    def run(
        self,
        until_ns: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run until the heap is empty, a deadline, or an event budget.

        :param until_ns: absolute stop time; events scheduled strictly after
            it remain pending and the clock is advanced to ``until_ns``.
            Cancelled events surfacing at the deadline boundary are purged,
            never left pending.
        :param max_events: stop after firing this many events (a safety
            valve for runaway feedback loops in experiments).
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        global _events_fired_total
        self._running = True
        heap = self._heap
        heappop = _heappop
        fired = 0
        try:
            if until_ns is None and max_events is None:
                # Tightest drain loop: pop unconditionally (IndexError is
                # the empty-heap exit), no peeking, no deadline checks.
                # Event layout indices are inlined: 0=TIME 2=CALLBACK 3=ARGS.
                # The except guards only the pop, so a callback raising
                # IndexError still propagates.
                while True:
                    try:
                        event = heappop(heap)
                    except IndexError:
                        break
                    callback = event[2]
                    if callback is None:
                        continue
                    self._now = event[0]
                    fired += 1
                    args = event[3]
                    if args:
                        callback(*args)
                    else:
                        callback()
            else:
                while heap:
                    head = heap[0]
                    if head[2] is None:
                        # Purge lazily-deleted entries wherever they
                        # surface, including at/beyond the deadline.
                        heappop(heap)
                        continue
                    if until_ns is not None and head[0] > until_ns:
                        break
                    if max_events is not None and fired >= max_events:
                        break
                    heappop(heap)
                    self._now = head[0]
                    fired += 1
                    head[2](*head[3])
        finally:
            self._running = False
            self._events_processed += fired
            _events_fired_total += fired
        if until_ns is not None and self._now < until_ns:
            self._now = until_ns

    def run_for(self, duration_ns: float, **kwargs: Any) -> None:
        """Run for ``duration_ns`` of simulated time from the current clock."""
        self.run(until_ns=self._now + duration_ns, **kwargs)

    def __repr__(self) -> str:
        return (
            f"<Simulator t={self._now:.1f}ns pending={self.active_events} "
            f"fired={self._events_processed}>"
        )
